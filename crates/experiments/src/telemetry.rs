//! Throughput telemetry for the repro pipeline.
//!
//! Every figure driver is timed by the `repro` harness; this module
//! holds the shared event counter the drivers feed, the per-figure
//! [`FigureBench`] records, and the [`BenchReport`] written as
//! `BENCH_repro.json` by `repro --bench-json` so successive PRs can
//! track the pipeline's events/sec trajectory.
//!
//! Timing never touches experiment *output*: tables go to stdout and
//! stay byte-identical run to run; telemetry goes to stderr and the
//! JSON file. The JSON is hand-rolled (the workspace builds offline,
//! with no serde_json) against the stable schema documented in
//! EXPERIMENTS.md §"Runtime & throughput".

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use trace_gen::arena::{ArenaStats, TraceArena};

/// Trace events fed into any simulator or classifier since process
/// start, across all threads.
static EVENTS_SIMULATED: AtomicU64 = AtomicU64::new(0);

/// A monotonic wall-clock stopwatch for harness timing.
///
/// This module is the one place the workspace reads the host clock
/// (`simlint`'s `wallclock` rule enforces it): simulation logic keeps
/// its own time in `sim_core::cycle`, and anything wall-clock-derived
/// flows only into stderr telemetry and the bench JSON — never into
/// experiment output.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`], clamped at zero.
    ///
    /// `Instant` promises monotonicity, but several platforms have
    /// shipped clocks that run backwards across cores or suspends;
    /// `Instant::elapsed` panics (or, historically, underflowed) on
    /// such a read. A stopwatch that only feeds telemetry must never
    /// take a sweep down with it, so a non-monotonic read reports
    /// `0.0` instead.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        std::time::Instant::now()
            .checked_duration_since(self.0)
            .unwrap_or_default()
            .as_secs_f64()
    }
}

/// The nanosecond clock the span layer records through
/// (`sim_core::span::arm`): monotonic nanoseconds since the first
/// read, clamped at zero like [`Stopwatch::elapsed_seconds`]. Keeping
/// the `Instant` reads here preserves the `wallclock` lint's
/// invariant that this module is the workspace's only clock site.
#[must_use]
pub fn trace_clock_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    u64::try_from(
        std::time::Instant::now()
            .checked_duration_since(epoch)
            .unwrap_or_default()
            .as_nanos(),
    )
    .unwrap_or(u64::MAX)
}

/// Records `n` simulated events. Called by every driver's inner loop
/// (via `drive` or directly); the per-figure formulas in
/// [`crate::cli::Target::simulated_events`] are cross-checked against
/// this counter in tests.
pub fn record_events(n: u64) {
    EVENTS_SIMULATED.fetch_add(n, Ordering::Relaxed);
}

/// Total events recorded so far.
#[must_use]
pub fn events_simulated() -> u64 {
    EVENTS_SIMULATED.load(Ordering::Relaxed)
}

/// One figure driver's measured run.
#[derive(Debug, Clone)]
pub struct FigureBench {
    /// Target name (`fig1`, …, `ablation`).
    pub name: &'static str,
    /// Wall time of the driver, seconds.
    pub wall_seconds: f64,
    /// Trace events the driver simulated (cells × events/workload).
    pub events: u64,
    /// `true` when the cell exhausted its retry budget and the sweep
    /// recorded a placeholder instead of results (schema
    /// `bench-repro/2`).
    pub degraded: bool,
    /// `true` when the cell was restored from a `--resume` checkpoint
    /// instead of being re-run (its `wall_seconds` is 0).
    pub resumed: bool,
}

impl FigureBench {
    /// A healthy, freshly computed measurement (the common case).
    #[must_use]
    pub fn ok(name: &'static str, wall_seconds: f64, events: u64) -> Self {
        FigureBench {
            name,
            wall_seconds,
            events,
            degraded: false,
            resumed: false,
        }
    }

    /// Simulated events per wall second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The stderr progress line the harness prints.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "[bench] {:<8} {:>8.2}s  {:>8} events/s  ({} events)",
            self.name,
            self.wall_seconds,
            si_rate(self.events_per_sec()),
            self.events
        )
    }
}

/// The full machine-readable run record.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker threads the run resolved to (an explicit `--threads`
    /// cap, or the machine's core count when unconstrained). Always
    /// the count actually used, never a placeholder.
    pub threads: usize,
    /// `--events` per workload.
    pub events_per_workload: usize,
    /// Per-figure measurements, in run order.
    pub figures: Vec<FigureBench>,
    /// Wall time of the whole harness run, seconds (includes arena
    /// materialization and overlap between figures, so it can be less
    /// than the sum of the per-figure times when figures run
    /// concurrently).
    pub total_wall_seconds: f64,
}

impl BenchReport {
    /// Total events across all figures.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.figures.iter().map(|f| f.events).sum()
    }

    /// Aggregate events per wall second.
    #[must_use]
    pub fn total_events_per_sec(&self) -> f64 {
        if self.total_wall_seconds > 0.0 {
            self.total_events() as f64 / self.total_wall_seconds
        } else {
            0.0
        }
    }

    /// Renders the report as the `BENCH_repro.json` document.
    ///
    /// Schema (`bench-repro/2`): see EXPERIMENTS.md §"Runtime &
    /// throughput" for field semantics. Version 2 added the per-figure
    /// `degraded` / `resumed` robustness fields.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_with_arena(&TraceArena::global().stats())
    }

    /// [`Self::to_json`] against explicit arena statistics — the
    /// variant golden tests use, since the global arena's contents
    /// depend on what else the process has run.
    #[must_use]
    pub fn to_json_with_arena(&self, arena: &ArenaStats) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"schema\": \"{}\",",
            sim_core::registry::SCHEMA_BENCH
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(
            out,
            "  \"events_per_workload\": {},",
            self.events_per_workload
        );
        out.push_str("  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            let comma = if i + 1 < self.figures.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"wall_seconds\": {}, \"events\": {}, \"events_per_sec\": {}, \"degraded\": {}, \"resumed\": {}}}{comma}",
                json_string(f.name),
                json_f64(f.wall_seconds),
                f.events,
                json_f64(f.events_per_sec()),
                f.degraded,
                f.resumed,
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"total\": {{\"wall_seconds\": {}, \"events\": {}, \"events_per_sec\": {}}},",
            json_f64(self.total_wall_seconds),
            self.total_events(),
            json_f64(self.total_events_per_sec()),
        );
        let _ = writeln!(
            out,
            "  \"arena\": {{\"traces\": {}, \"resident_events\": {}, \"replay_hits\": {}, \"materializations\": {}}}",
            arena.traces, arena.resident_events, arena.hits, arena.misses,
        );
        out.push_str("}\n");
        out
    }
}

/// Formats a rate as a short SI string (`28.1M`, `950k`).
fn si_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.0}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// A finite f64 as a JSON number (6 significant decimals).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_owned()
    }
}

/// A JSON string literal with the mandatory escapes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let before = events_simulated();
        record_events(123);
        record_events(877);
        assert_eq!(events_simulated() - before, 1_000);
    }

    #[test]
    fn rates_and_lines_render() {
        let f = FigureBench::ok("fig1", 2.0, 50_000_000);
        assert!((f.events_per_sec() - 25_000_000.0).abs() < 1e-6);
        assert!(f.summary_line().contains("fig1"));
        assert!(f.summary_line().contains("25.0M"));
        let zero = FigureBench::ok("z", 0.0, 5);
        assert_eq!(zero.events_per_sec(), 0.0);
    }

    #[test]
    fn json_is_well_formed_and_balanced() {
        let report = BenchReport {
            threads: 4,
            events_per_workload: 1000,
            figures: vec![
                FigureBench::ok("fig1", 1.5, 72_000),
                FigureBench {
                    degraded: true,
                    ..FigureBench::ok("fig3", 0.5, 60_000)
                },
            ],
            total_wall_seconds: 2.0,
        };
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": \"bench-repro/2\""));
        assert!(json.contains("\"degraded\": true"));
        assert!(json.contains("\"resumed\": false"));
        assert!(json.contains("\"events\": 132000"));
        assert!(json.contains("\"threads\": 4"));
        // No trailing commas before closers.
        assert!(!json.contains(",\n  ]") && !json.contains(",\n}"));
    }

    #[test]
    fn stopwatch_clamps_non_monotonic_reads_to_zero() {
        // A stopwatch "started" in the future models a clock that
        // stepped backwards between start() and elapsed_seconds().
        let future = Stopwatch(std::time::Instant::now() + std::time::Duration::from_secs(3600));
        assert_eq!(future.elapsed_seconds(), 0.0);
        // And a normal stopwatch still measures forward time.
        let now = Stopwatch::start();
        assert!(now.elapsed_seconds() >= 0.0);
    }

    #[test]
    fn trace_clock_is_monotonic_from_zero() {
        let a = trace_clock_ns();
        let b = trace_clock_ns();
        assert!(b >= a);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }
}
