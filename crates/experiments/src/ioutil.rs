//! Fault-aware file I/O for the harness's JSON/JSONL artifacts.
//!
//! Every artifact the `repro` harness persists (bench report, probe
//! JSONL, checkpoint lines) goes through this module so that (a) the
//! [`sim_core::fault::FaultSite::JsonlWrite`] injection site covers
//! all of them uniformly, and (b) *real* transient I/O errors get the
//! same bounded-retry treatment injected ones do, instead of failing
//! the whole sweep on the first hiccup.

use std::io;
use std::path::Path;

use sim_core::fault::{self, FaultSite};

/// Writes `contents` to `path`, retrying transient failures with the
/// installed fault plan's deterministic backoff (or the default
/// policy's, when no plan is installed).
///
/// # Errors
///
/// Returns the last I/O error once the retry budget is exhausted, or
/// the injected fault's error when a persistent fault plan defeats
/// every retry at the [`FaultSite::JsonlWrite`] gate.
pub fn write_with_retry(path: &Path, contents: &str) -> io::Result<()> {
    // Injection site: a transient fault retries inside the gate and
    // falls through to the real write; a persistent one surfaces here
    // as the error a dying disk would produce.
    fault::gate(FaultSite::JsonlWrite).map_err(io::Error::other)?;
    let budget = fault::io_retry_attempts();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match std::fs::write(path, contents) {
            Ok(()) => return Ok(()),
            Err(err) if attempt >= budget => return Err(err),
            Err(_) => fault::backoff(attempt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_overwrites() {
        let dir = std::env::temp_dir().join("ioutil_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        write_with_retry(&path, "one").unwrap();
        write_with_retry(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unwritable_path_errors_after_retries() {
        let err = write_with_retry(Path::new("/nonexistent-root-dir/x/y.json"), "data")
            .expect_err("path cannot exist");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
