//! §5.6, "Multithreaded architectures": cross-thread cache conflicts
//! and co-schedule selection.
//!
//! When two threads dynamically share a cache, conflict misses arise
//! from competition between threads — invisible to software, but
//! visible to the MCT. The paper suggests the scheduler use that
//! signal: "jobs which produce an inordinate number of conflict misses
//! when scheduled together can be identified as bad candidates for
//! co-scheduling in the future."
//!
//! This experiment runs workload pairs on the SMT model over one
//! shared L1 and reports, per pairing: the shared-cache miss rate, the
//! *excess* misses over the solo runs (the cross-thread conflicts),
//! and the combined throughput — then checks that the MCT's
//! conflict-rate ranking agrees with the throughput ranking.

use cpu_model::{BaselineSystem, CpuConfig, OooModel, SmtModel};
use mct::{ClassifyingCache, TagBits};
use sim_core::Addr;
use trace_gen::TraceEvent;
use workloads::{by_name, Workload};

use crate::table::pct;
use crate::{Table, SEED};

/// One co-scheduled pairing's measurements.
#[derive(Debug, Clone)]
pub struct Pairing {
    /// The two workload names.
    pub names: (String, String),
    /// Conflict misses per access in the shared cache (MCT-counted).
    pub conflict_rate: f64,
    /// Shared-cache miss rate.
    pub shared_miss_rate: f64,
    /// Average of the two solo miss rates.
    pub solo_miss_rate: f64,
    /// Combined SMT throughput (instructions per cycle).
    pub throughput_ipc: f64,
    /// Weighted speedup: mean over threads of (shared IPC / solo
    /// IPC). 1.0 = no interference at all; lower = the sharing cost.
    pub weighted_speedup: f64,
}

impl Pairing {
    /// Misses created by sharing: shared minus solo-average rate.
    #[must_use]
    pub fn excess_miss_rate(&self) -> f64 {
        (self.shared_miss_rate - self.solo_miss_rate).max(0.0)
    }
}

/// The §5.6 co-scheduling study.
#[derive(Debug, Clone)]
pub struct Sec56 {
    /// All distinct pairings, sorted best (lowest conflict rate)
    /// first.
    pub pairings: Vec<Pairing>,
    /// Events per thread.
    pub events: usize,
}

/// The jobs used in the study: a spread of memory behaviours.
#[must_use]
pub fn jobs() -> Vec<Workload> {
    ["tomcatv", "swim", "turb3d", "gcc", "li", "fpppp"]
        .iter()
        .map(|n| by_name(n).expect("workload exists"))
        .collect()
}

fn thread_trace(w: &Workload, seed: u64, events: usize, offset: u64) -> Vec<TraceEvent> {
    let base = crate::trace_for_seed(w, seed, events);
    base.iter()
        .map(|e| {
            let mut e = *e;
            // Distinct processes live in distinct address spaces.
            e.access.addr = Addr::new(e.access.addr.raw() ^ offset);
            e
        })
        .collect()
}

/// Solo run: (miss rate, IPC).
fn solo_run(trace: &[TraceEvent]) -> (f64, f64) {
    let mut sys = BaselineSystem::paper_default().expect("paper config");
    let cpu = OooModel::new(CpuConfig::paper_default());
    crate::telemetry::record_events(trace.len() as u64);
    let report = cpu.run(&mut sys, trace.iter().copied());
    (sys.l1_stats().miss_rate(), report.ipc())
}

/// Trace events this section simulates: one solo run per thread trace
/// (two per job), then per pairing a two-thread SMT run plus the MCT
/// accounting pass over both interleaved traces.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    let n = jobs().len();
    let pairs = n * (n + 1) / 2;
    ((2 * n + 4 * pairs) * events) as u64
}

/// Runs the co-scheduling study with `events` references per thread.
#[must_use]
pub fn run(events: usize) -> Sec56 {
    let jobs = jobs();
    let traces: Vec<Vec<TraceEvent>> = jobs
        .iter()
        .map(|w| thread_trace(w, SEED, events, 0))
        .collect();
    let partner_traces: Vec<Vec<TraceEvent>> = jobs
        .iter()
        .map(|w| thread_trace(w, SEED + 1, events, 1 << 43))
        .collect();
    let solo: Vec<(f64, f64)> = jobs
        .iter()
        .zip(&traces)
        .map(|(w, t)| crate::probe::cell("sec56", || format!("solo/{}", w.name()), || solo_run(t)))
        .collect();
    let solo_partner: Vec<(f64, f64)> = jobs
        .iter()
        .zip(&partner_traces)
        .map(|(w, t)| {
            crate::probe::cell(
                "sec56",
                || format!("solo-partner/{}", w.name()),
                || solo_run(t),
            )
        })
        .collect();

    let mut cells = Vec::new();
    for i in 0..jobs.len() {
        for j in i..jobs.len() {
            cells.push((i, j));
        }
    }
    let mut pairings = crate::par_map(cells, |(i, j)| {
        crate::probe::cell(
            "sec56",
            || format!("pair/{}+{}", jobs[i].name(), jobs[j].name()),
            || {
                // Timed SMT run on a shared baseline L1, plus the MCT
                // accounting pass: four trace replays per pairing.
                crate::telemetry::record_events(4 * events as u64);
                let mut shared = BaselineSystem::paper_default().expect("paper config");
                let smt = SmtModel::new(CpuConfig::paper_default());
                let report = smt.run(
                    &mut shared,
                    vec![traces[i].clone(), partner_traces[j].clone()],
                );

                // Conflict accounting on the same interleaving, through a
                // classifying cache (the MCT the scheduler would read).
                let mut mct_cache = ClassifyingCache::new(
                    cache_model::CacheGeometry::new(16 * 1024, 1, 64).expect("paper geometry"),
                    TagBits::Full,
                );
                let mut k = 0usize;
                while k < traces[i].len() || k < partner_traces[j].len() {
                    if let Some(e) = traces[i].get(k) {
                        mct_cache.access(e.access.addr.line(64));
                    }
                    if let Some(e) = partner_traces[j].get(k) {
                        mct_cache.access(e.access.addr.line(64));
                    }
                    k += 1;
                }
                let (conflict, _) = mct_cache.class_counts();
                let accesses = mct_cache.stats().accesses() as f64;

                // Weighted speedup: each thread's shared-run IPC (against
                // its own finish time) relative to its solo IPC.
                let shared_ipc = |k: usize| {
                    let r = &report.per_thread[k];
                    if r.cycles == 0 {
                        0.0
                    } else {
                        r.instructions as f64 / r.cycles as f64
                    }
                };
                let weighted_speedup =
                    (shared_ipc(0) / solo[i].1 + shared_ipc(1) / solo_partner[j].1) / 2.0;

                Pairing {
                    names: (jobs[i].name().to_owned(), jobs[j].name().to_owned()),
                    conflict_rate: conflict as f64 / accesses,
                    shared_miss_rate: shared.l1_stats().miss_rate(),
                    solo_miss_rate: (solo[i].0 + solo_partner[j].0) / 2.0,
                    throughput_ipc: report.throughput_ipc(),
                    weighted_speedup,
                }
            },
        )
    });
    pairings.sort_by(|a, b| a.conflict_rate.total_cmp(&b.conflict_rate));
    Sec56 { pairings, events }
}

impl std::fmt::Display for Sec56 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Section 5.6: co-scheduling on a shared L1, ranked by MCT conflict rate ({} events/thread)\n",
            self.events
        )?;
        let mut t = Table::new(vec![
            "pairing".into(),
            "conflict%".into(),
            "shared miss%".into(),
            "solo miss%".into(),
            "excess%".into(),
            "IPC".into(),
            "wspeedup".into(),
        ]);
        for p in &self.pairings {
            t.row(vec![
                format!("{}+{}", p.names.0, p.names.1),
                pct(p.conflict_rate),
                pct(p.shared_miss_rate),
                pct(p.solo_miss_rate),
                pct(p.excess_miss_rate()),
                format!("{:.3}", p.throughput_ipc),
                format!("{:.3}", p.weighted_speedup),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\npaper §5.6: jobs with inordinate co-scheduled conflict misses are bad candidates"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_never_reduces_misses_and_rankings_correlate() {
        let r = run(8_000);
        assert!(!r.pairings.is_empty());
        for p in &r.pairings {
            assert!(
                p.shared_miss_rate >= p.solo_miss_rate - 0.03,
                "{}+{}: sharing should not reduce misses ({} vs {})",
                p.names.0,
                p.names.1,
                p.shared_miss_rate,
                p.solo_miss_rate
            );
        }
        // The scheduler signal: the quartile of pairings with the
        // fewest MCT conflicts must interfere less (higher weighted
        // speedup) than the quartile with the most.
        let n = r.pairings.len();
        let q = (n / 4).max(1);
        let best: f64 = r.pairings[..q]
            .iter()
            .map(|p| p.weighted_speedup)
            .sum::<f64>()
            / q as f64;
        let worst: f64 = r.pairings[n - q..]
            .iter()
            .map(|p| p.weighted_speedup)
            .sum::<f64>()
            / q as f64;
        assert!(
            best > worst,
            "low-conflict pairings should interfere less: best {best} vs worst {worst}"
        );
    }
}
