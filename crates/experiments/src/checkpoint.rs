//! Checkpoint/resume for the `repro` sweep: completed figure cells
//! persisted as `fault-repro/1` JSONL so a killed run continues where
//! it died.
//!
//! # Format (`fault-repro/1`)
//!
//! One header line, then one line per completed cell, appended (and
//! flushed) as each cell finishes:
//!
//! ```text
//! {"schema":"fault-repro/1","events_per_workload":2000,"targets":["fig1","fig2"]}
//! {"type":"cell","target":"fig1","status":"ok","events":144000,"rendered":"..."}
//! {"type":"cell","target":"fig2","status":"degraded","events":0,"rendered":"...","message":"..."}
//! ```
//!
//! `rendered` is the cell's full stdout table (JSON-escaped), so a
//! resumed run can reprint checkpointed cells byte-identically without
//! re-running them — the basis of the resume golden test.
//!
//! The loader is deliberately tolerant: a missing file, wrong schema,
//! mismatched `events_per_workload`, or a torn/corrupt tail (the
//! expected shape after a kill mid-write) never fails the run — bad
//! lines are skipped with a warning and the affected cells simply
//! re-run. The last line per target wins, and only `ok` cells are
//! skippable on `--resume`; `degraded` ones get a fresh chance.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use sim_core::fault::{self, FaultSite};

use crate::jsonl::{self, Value};
use crate::telemetry::json_string;

/// The checkpoint schema identifier.
pub const SCHEMA: &str = sim_core::registry::SCHEMA_FAULT;

/// How a checkpointed cell ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell completed and `rendered` holds its full output.
    Ok,
    /// The cell exhausted its retry budget; `rendered` holds the
    /// placeholder the sweep printed and `message` says why.
    Degraded,
}

impl CellStatus {
    /// The schema's `status` field value.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Degraded => "degraded",
        }
    }

    /// Parses a `status` field value.
    #[must_use]
    pub fn parse(name: &str) -> Option<CellStatus> {
        match name {
            "ok" => Some(CellStatus::Ok),
            "degraded" => Some(CellStatus::Degraded),
            _ => None,
        }
    }
}

/// One completed (or degraded) figure cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEntry {
    /// Canonical target name (`fig1`, …).
    pub target: String,
    /// How the cell ended.
    pub status: CellStatus,
    /// Simulated events the cell accounted for (0 when degraded).
    pub events: u64,
    /// The cell's full stdout rendering (table text, or the degraded
    /// placeholder line).
    pub rendered: String,
    /// Failure description, for degraded cells.
    pub message: Option<String>,
}

impl CellEntry {
    fn to_line(&self) -> String {
        let mut line = format!(
            "{{\"type\":\"cell\",\"target\":{},\"status\":{},\"events\":{},\"rendered\":{}",
            json_string(&self.target),
            json_string(self.status.name()),
            self.events,
            json_string(&self.rendered),
        );
        if let Some(message) = &self.message {
            let _ = write!(line, ",\"message\":{}", json_string(message));
        }
        line.push('}');
        line
    }

    fn from_value(v: &Value) -> Option<CellEntry> {
        if v.str_field("type") != Some("cell") {
            return None;
        }
        Some(CellEntry {
            target: v.str_field("target")?.to_owned(),
            status: CellStatus::parse(v.str_field("status")?)?,
            events: v.u64_field("events")?,
            rendered: v.str_field("rendered")?.to_owned(),
            message: v.str_field("message").map(str::to_owned),
        })
    }
}

fn header_line(events_per_workload: usize, targets: &[&str]) -> String {
    let mut line = format!(
        "{{\"schema\":{},\"events_per_workload\":{events_per_workload},\"targets\":[",
        json_string(SCHEMA),
    );
    for (i, t) in targets.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&json_string(t));
    }
    line.push_str("]}");
    line
}

/// An incremental checkpoint file: one cell appended and flushed per
/// [`CheckpointWriter::record`], so the file is valid (modulo at most
/// one torn tail line) at every instant a kill could land.
#[derive(Debug)]
pub struct CheckpointWriter {
    state: Mutex<WriterState>,
}

#[derive(Debug)]
struct WriterState {
    file: File,
    path: PathBuf,
    recorded: u64,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint at `path` with a fresh
    /// header.
    ///
    /// # Errors
    ///
    /// Any error creating or writing the file.
    pub fn create(path: &Path, events_per_workload: usize, targets: &[&str]) -> io::Result<Self> {
        Self::with_preserved(path, events_per_workload, targets, &[])
    }

    /// Rewrites the checkpoint at `path` with a fresh header plus the
    /// `preserved` cells carried over from a previous run, leaving the
    /// file open for appending this run's cells after them.
    ///
    /// # Errors
    ///
    /// Any error creating or writing the file.
    pub fn with_preserved(
        path: &Path,
        events_per_workload: usize,
        targets: &[&str],
        preserved: &[CellEntry],
    ) -> io::Result<Self> {
        let mut file = File::create(path)?;
        writeln!(file, "{}", header_line(events_per_workload, targets))?;
        for cell in preserved {
            writeln!(file, "{}", cell.to_line())?;
        }
        file.flush()?;
        Ok(CheckpointWriter {
            state: Mutex::new(WriterState {
                file,
                path: path.to_owned(),
                recorded: preserved.len() as u64,
            }),
        })
    }

    /// Appends and flushes one completed cell, returning the total
    /// number of cells now in the file (preserved + recorded) — the
    /// counter `--crash-after` compares against.
    ///
    /// # Errors
    ///
    /// The write/flush error, or the injected fault when a persistent
    /// plan defeats every retry at the
    /// [`FaultSite::JsonlWrite`] gate.
    pub fn record(&self, cell: &CellEntry) -> io::Result<u64> {
        // Injection site: same gate as every other artifact write.
        fault::gate(FaultSite::JsonlWrite).map_err(io::Error::other)?;
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        writeln!(state.file, "{}", cell.to_line())?;
        state.file.flush()?;
        state.recorded += 1;
        Ok(state.recorded)
    }

    /// The checkpoint's path (for diagnostics).
    #[must_use]
    pub fn path(&self) -> PathBuf {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .path
            .clone()
    }
}

/// What [`load`] recovered from an existing checkpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Loaded {
    /// Usable cells, last line per target winning, in file order of
    /// each target's final appearance.
    pub cells: Vec<CellEntry>,
    /// Human-readable notes about anything skipped or reset (torn
    /// lines, schema/parameter mismatches). Empty on a clean load.
    pub warnings: Vec<String>,
}

/// Reads the checkpoint at `path`, tolerating every corruption a kill
/// can produce. Returns no cells (with a warning where applicable)
/// when the file is missing, has a foreign schema, or was written for
/// a different `--events` setting; otherwise returns the last recorded
/// entry per target, skipping torn or malformed lines individually.
#[must_use]
pub fn load(path: &Path, expected_events: usize) -> Loaded {
    let mut out = Loaded::default();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return out,
        Err(err) => {
            out.warnings.push(format!(
                "checkpoint {} unreadable ({err}); starting fresh",
                path.display()
            ));
            return out;
        }
    };
    let mut lines = text.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        out.warnings.push(format!(
            "checkpoint {} is empty; starting fresh",
            path.display()
        ));
        return out;
    };
    let header = match jsonl::parse(first) {
        Ok(v) if v.str_field("schema") == Some(SCHEMA) => v,
        _ => {
            out.warnings.push(format!(
                "checkpoint {} has no {SCHEMA} header; starting fresh",
                path.display()
            ));
            return out;
        }
    };
    if header.u64_field("events_per_workload") != Some(expected_events as u64) {
        out.warnings.push(format!(
            "checkpoint {} was written for --events {}, this run uses {}; starting fresh",
            path.display(),
            header
                .u64_field("events_per_workload")
                .map_or_else(|| "?".to_owned(), |n| n.to_string()),
            expected_events,
        ));
        return out;
    }
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cell = jsonl::parse(line)
            .ok()
            .as_ref()
            .and_then(CellEntry::from_value);
        match cell {
            Some(cell) => {
                // Last line per target wins (a degraded cell later
                // re-recorded as ok, or vice versa).
                out.cells.retain(|c| c.target != cell.target);
                out.cells.push(cell);
            }
            None => out.warnings.push(format!(
                "checkpoint {} line {}: unparseable (torn write?); cell will re-run",
                path.display(),
                i + 1,
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("checkpoint_unit_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn ok_cell(target: &str, rendered: &str) -> CellEntry {
        CellEntry {
            target: target.to_owned(),
            status: CellStatus::Ok,
            events: 1000,
            rendered: rendered.to_owned(),
            message: None,
        }
    }

    #[test]
    fn write_then_load_round_trips() {
        let path = temp_path("round_trip.jsonl");
        let writer = CheckpointWriter::create(&path, 2000, &["fig1", "fig2"]).unwrap();
        assert_eq!(
            writer.record(&ok_cell("fig1", "line a\nline b\n")).unwrap(),
            1
        );
        let degraded = CellEntry {
            target: "fig2".to_owned(),
            status: CellStatus::Degraded,
            events: 0,
            rendered: "fig2: degraded\n".to_owned(),
            message: Some("injected worker fault persisted".to_owned()),
        };
        assert_eq!(writer.record(&degraded).unwrap(), 2);
        drop(writer);

        let loaded = load(&path, 2000);
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        assert_eq!(loaded.cells.len(), 2);
        assert_eq!(loaded.cells[0], ok_cell("fig1", "line a\nline b\n"));
        assert_eq!(loaded.cells[1], degraded);
    }

    #[test]
    fn last_entry_per_target_wins() {
        let path = temp_path("last_wins.jsonl");
        let writer = CheckpointWriter::create(&path, 100, &["fig1"]).unwrap();
        let mut first = ok_cell("fig1", "old");
        first.status = CellStatus::Degraded;
        writer.record(&first).unwrap();
        writer.record(&ok_cell("fig1", "new")).unwrap();
        drop(writer);
        let loaded = load(&path, 100);
        assert_eq!(loaded.cells, vec![ok_cell("fig1", "new")]);
    }

    #[test]
    fn resume_preserves_prior_cells() {
        let path = temp_path("preserve.jsonl");
        let keep = ok_cell("fig1", "kept");
        let writer = CheckpointWriter::with_preserved(
            &path,
            100,
            &["fig1", "fig3"],
            std::slice::from_ref(&keep),
        )
        .unwrap();
        assert_eq!(writer.record(&ok_cell("fig3", "fresh")).unwrap(), 2);
        drop(writer);
        let loaded = load(&path, 100);
        assert_eq!(loaded.cells, vec![keep, ok_cell("fig3", "fresh")]);
    }

    #[test]
    fn missing_file_is_a_clean_fresh_start() {
        let loaded = load(Path::new("/definitely/not/here.jsonl"), 100);
        assert!(loaded.cells.is_empty());
        assert!(loaded.warnings.is_empty());
    }

    #[test]
    fn torn_tail_skips_only_the_bad_line() {
        let path = temp_path("torn.jsonl");
        let writer = CheckpointWriter::create(&path, 100, &["fig1"]).unwrap();
        writer.record(&ok_cell("fig1", "good")).unwrap();
        drop(writer);
        // Simulate a kill mid-write: append half a line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"cell\",\"target\":\"fig2\",\"stat");
        std::fs::write(&path, text).unwrap();

        let loaded = load(&path, 100);
        assert_eq!(loaded.cells, vec![ok_cell("fig1", "good")]);
        assert_eq!(loaded.warnings.len(), 1);
        assert!(
            loaded.warnings[0].contains("torn write"),
            "{:?}",
            loaded.warnings
        );
    }

    #[test]
    fn foreign_schema_and_event_mismatch_start_fresh() {
        let path = temp_path("foreign.jsonl");
        std::fs::write(&path, "{\"schema\":\"other/9\"}\n").unwrap();
        let loaded = load(&path, 100);
        assert!(loaded.cells.is_empty());
        assert_eq!(loaded.warnings.len(), 1);

        let writer = CheckpointWriter::create(&path, 100, &["fig1"]).unwrap();
        writer.record(&ok_cell("fig1", "x")).unwrap();
        drop(writer);
        let loaded = load(&path, 999);
        assert!(loaded.cells.is_empty());
        assert!(
            loaded.warnings[0].contains("--events 100"),
            "{:?}",
            loaded.warnings
        );
    }

    #[test]
    fn empty_file_warns_and_starts_fresh() {
        let path = temp_path("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let loaded = load(&path, 100);
        assert!(loaded.cells.is_empty());
        assert_eq!(loaded.warnings.len(), 1);
    }
}
