//! Miss-ratio curves as a second ground truth (`repro --mrc`).
//!
//! The paper's classification ground truth is the three-C oracle: a
//! fully-associative LRU shadow cache of equal capacity, consulted
//! per miss. A miss-ratio curve (MRC) computes the same quantity from
//! the other direction — a single pass over the reference stream
//! recording every access's LRU *stack distance* yields the
//! fully-associative miss ratio at **every** capacity at once
//! (Mattson et al., 1970). The two must agree wherever they overlap:
//! the MRC's miss ratio at a geometry's line capacity is exactly the
//! oracle's compulsory + capacity miss rate for that geometry.
//!
//! This driver runs the [`mrc`] crate's engines over every workload
//! (the SPEC95-analog suite plus the kernel-taxonomy patterns),
//! evaluates each curve on a fixed capacity ladder, and then
//! cross-checks the curve against the MCT sweep of
//! [`crate::fig1::configurations`]: per (configuration, workload)
//! cell it reports the MRC-derived capacity-miss estimate next to the
//! fraction of misses the MCT *labelled* capacity. The gap between
//! the two columns is the MCT's capacity-side classification error,
//! measured against an independent ground truth that shares no code
//! with the three-C oracle.
//!
//! With `--mrc-sample R` the exact engine is replaced by the SHARDS
//! fixed-rate spatial sampler, which keeps O(sampled lines) state —
//! under `--stream` the whole pass holds one chunk plus the sampled
//! index, regardless of trace length.

use cache_model::CacheGeometry;
use mct::accuracy::{AccuracyEvaluator, AccuracyReport};
use mct::TagBits;
use mrc::{CurvePoint, ShardsEngine, StackDistanceEngine};
use workloads::Workload;

use crate::telemetry::{json_f64, json_string};
use crate::{ReplayTrace, Table};

/// The capacity ladder (in lines) every curve is evaluated at. It
/// includes both paper geometry capacities — 256 lines (16 KB, 64 B
/// lines) and 1024 lines (64 KB) — so the cross-check cells can read
/// their estimate straight off the curve.
pub const CAPACITY_LADDER: [u64; 7] = [16, 64, 256, 1024, 4096, 16384, 65536];

/// The workloads the MRC family covers: the full SPEC95-analog suite
/// plus the kernel-taxonomy patterns (`uniform`,
/// `working_set_{128,512}`).
#[must_use]
pub fn workload_suite() -> Vec<Workload> {
    let mut all = workloads::full_suite();
    all.extend(workloads::taxonomy_suite());
    all
}

/// Exact or SHARDS-sampled stack-distance engine, chosen per run.
enum Engine {
    Exact(StackDistanceEngine),
    Sampled(ShardsEngine),
}

impl Engine {
    fn new(sample: Option<f64>) -> Engine {
        match sample {
            None => Engine::Exact(StackDistanceEngine::new()),
            Some(rate) => {
                Engine::Sampled(ShardsEngine::new(rate).expect("sample rate validated by the CLI"))
            }
        }
    }

    fn record_parts_block(&mut self, sets: &[u32], tags: &[u64], set_bits: u32) {
        match self {
            Engine::Exact(e) => e.record_parts_block(sets, tags, set_bits),
            Engine::Sampled(e) => e.record_parts_block(sets, tags, set_bits),
        }
    }

    fn miss_ratio(&self, capacity_lines: u64) -> f64 {
        match self {
            Engine::Exact(e) => e.miss_ratio(capacity_lines),
            Engine::Sampled(e) => e.miss_ratio(capacity_lines),
        }
    }

    /// Distinct lines resident in the engine's index (post-filter for
    /// the sampled engine) — the memory-proportional quantity.
    fn distinct_lines(&self) -> u64 {
        match self {
            Engine::Exact(e) => e.distinct_lines(),
            Engine::Sampled(e) => e.distinct_sampled_lines(),
        }
    }

    /// Events that reached the stack-distance tree (all of them for
    /// the exact engine).
    fn sampled_events(&self) -> u64 {
        match self {
            Engine::Exact(e) => e.histogram().total(),
            Engine::Sampled(e) => e.sampled_events(),
        }
    }
}

/// One workload's miss-ratio curve on [`CAPACITY_LADDER`].
#[derive(Debug, Clone)]
pub struct WorkloadCurve {
    /// Workload name.
    pub workload: String,
    /// Events replayed.
    pub events: u64,
    /// Events admitted past the spatial filter (equals `events` for
    /// the exact engine).
    pub sampled_events: u64,
    /// Distinct lines held by the engine — its memory footprint in
    /// index entries.
    pub distinct_lines: u64,
    /// `(capacity_lines, miss_ratio)` per ladder rung.
    pub points: Vec<CurvePoint>,
}

impl WorkloadCurve {
    /// The curve's miss ratio at `capacity_lines`, if that capacity is
    /// on the ladder.
    #[must_use]
    pub fn at(&self, capacity_lines: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.capacity_lines == capacity_lines)
            .map(|p| p.miss_ratio)
    }
}

/// One (configuration, workload) cross-check cell: the MRC's
/// capacity-miss estimate next to the MCT's capacity labelling.
#[derive(Debug, Clone)]
pub struct CapacityCell {
    /// Configuration name (fig1 naming, e.g. `16KB DM`).
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// The configuration's line capacity (sets × ways).
    pub capacity_lines: u64,
    /// MRC estimate: fraction of accesses whose stack distance is at
    /// least `capacity_lines` (or cold) — the fully-associative miss
    /// ratio, i.e. the compulsory + capacity miss rate.
    pub mrc_miss_ratio: f64,
    /// Fraction of accesses the MCT labelled capacity misses.
    pub mct_capacity_ratio: f64,
    /// The real set-associative cache's miss ratio.
    pub real_miss_ratio: f64,
}

impl CapacityCell {
    /// `|mrc − mct|`: the capacity-side classification gap.
    #[must_use]
    pub fn gap(&self) -> f64 {
        (self.mrc_miss_ratio - self.mct_capacity_ratio).abs()
    }
}

/// The full MRC family output.
#[derive(Debug, Clone)]
pub struct MrcRun {
    /// `None` for the exact engine, `Some(rate)` for SHARDS.
    pub sample: Option<f64>,
    /// Events per workload.
    pub events: usize,
    /// Per-workload curves, in suite order.
    pub curves: Vec<WorkloadCurve>,
    /// Cross-check cells, configuration-major in fig1 order.
    pub cells: Vec<CapacityCell>,
}

/// Trace events this family simulates: one curve pass per workload
/// plus one MCT pass per (configuration, workload) cell.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    let suite = workload_suite().len();
    ((crate::fig1::configurations().len() + 1) * suite * events) as u64
}

/// Replays a [`ReplayTrace`] through the engine. Arena inputs replay
/// in event blocks; stream inputs run the chunked generator pipeline
/// with pooled buffers, so memory stays O(chunk + engine index).
fn replay_mrc(trace: &ReplayTrace, set_bits: u32, engine: &mut Engine) {
    let _span = sim_core::span::enter("replay_mrc");
    sim_core::span::add_events(trace.len() as u64);
    match trace {
        ReplayTrace::Arena { trace, .. } => {
            let block = crate::replay_block_size().max(1);
            trace.for_each_block(block, |sets, tags| {
                engine.record_parts_block(sets, tags, set_bits);
            });
        }
        ReplayTrace::Stream {
            workload,
            geom,
            events,
        } => {
            let mut source = workload.source(crate::SEED);
            let line_size = geom.line_size();
            let set_bits = geom.set_bits();
            let mask = (1u64 << set_bits) - 1;
            let mut left = *events;
            if left == 0 {
                return;
            }
            let chunk = crate::STREAM_CHUNK.min(left);
            let mut sets = cache_model::pool::take_u32_zeroed(chunk);
            let mut tags = cache_model::pool::take_u64(chunk);
            while left > 0 {
                let n = chunk.min(left);
                for i in 0..n {
                    let line = source.next_event().access.addr.line(line_size).raw();
                    sets[i] = (line & mask) as u32;
                    tags[i] = line >> set_bits;
                }
                engine.record_parts_block(&sets[..n], &tags[..n], set_bits);
                left -= n;
            }
            cache_model::pool::recycle_u32(sets);
            cache_model::pool::recycle_u64(tags);
        }
    }
}

fn curve_for(
    workload: &Workload,
    geom: CacheGeometry,
    events: usize,
    sample: Option<f64>,
) -> WorkloadCurve {
    let mut engine = Engine::new(sample);
    let trace = crate::replay_for(workload, &geom, events);
    crate::telemetry::record_events(events as u64);
    replay_mrc(&trace, geom.set_bits(), &mut engine);
    WorkloadCurve {
        workload: workload.name().to_owned(),
        events: events as u64,
        sampled_events: engine.sampled_events(),
        distinct_lines: engine.distinct_lines(),
        points: CAPACITY_LADDER
            .iter()
            .map(|&c| CurvePoint {
                capacity_lines: c,
                miss_ratio: engine.miss_ratio(c),
            })
            .collect(),
    }
}

fn mct_report(workload: &Workload, geom: CacheGeometry, events: usize) -> AccuracyReport {
    let mut eval = AccuracyEvaluator::new(geom, TagBits::Full);
    let trace = crate::replay_for(workload, &geom, events);
    crate::telemetry::record_events(events as u64);
    crate::replay_accuracy(&trace, &mut eval);
    eval.finish()
}

/// Runs the MRC family: curves for every workload, then the MCT
/// cross-check over the fig1 geometry sweep.
#[must_use]
pub fn run(events: usize, sample: Option<f64>) -> MrcRun {
    let suite = workload_suite();
    // All fig1 geometries share 64 B lines, so one decomposition (the
    // 16 KB DM shape, shared with the fig1 arena entries) serves every
    // curve; stack distances depend only on the line address.
    let base = crate::fig1::configurations()[0].1;
    let curves: Vec<WorkloadCurve> = crate::par_map(suite.clone(), |w| {
        crate::probe::cell(
            "mrc",
            || format!("curve/{}", w.name()),
            || curve_for(&w, base, events, sample),
        )
    });

    let mut cells = Vec::new();
    for (name, geom) in crate::fig1::configurations() {
        let reports: Vec<(String, AccuracyReport)> = crate::par_map(suite.clone(), |w| {
            let report = crate::probe::cell(
                "mrc",
                || format!("{name}/{}", w.name()),
                || mct_report(&w, geom, events),
            );
            (w.name().to_owned(), report)
        });
        let capacity = geom.num_lines() as u64;
        for (curve, (workload, r)) in curves.iter().zip(reports) {
            debug_assert_eq!(curve.workload, workload);
            let accesses = r.accesses.max(1) as f64;
            // The MCT labels every miss Conflict or Capacity, so its
            // capacity-labelled count is the oracle-non-conflict
            // agreements plus the oracle-conflict disagreements.
            let mct_capacity =
                r.capacity.numerator() + (r.conflict.denominator() - r.conflict.numerator());
            cells.push(CapacityCell {
                config: name.clone(),
                workload,
                capacity_lines: capacity,
                mrc_miss_ratio: curve.at(capacity).unwrap_or_else(|| {
                    unreachable!("geometry capacity missing from CAPACITY_LADDER")
                }),
                mct_capacity_ratio: mct_capacity as f64 / accesses,
                real_miss_ratio: r.misses as f64 / accesses,
            });
        }
    }
    MrcRun {
        sample,
        events,
        curves,
        cells,
    }
}

impl MrcRun {
    /// `"exact"` or `"sampled"`.
    #[must_use]
    pub fn mode(&self) -> &'static str {
        if self.sample.is_some() {
            "sampled"
        } else {
            "exact"
        }
    }

    /// Renders the run as `mrc-repro/1` JSONL: a header line, one
    /// `curve` record per workload, one `cell` record per
    /// cross-check cell.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":{},\"mode\":{},\"sample_rate\":{},\"events\":{},\"workloads\":{},\"cells\":{}}}\n",
            json_string(sim_core::registry::SCHEMA_MRC),
            json_string(self.mode()),
            json_f64(self.sample.unwrap_or(1.0)),
            self.events,
            self.curves.len(),
            self.cells.len(),
        ));
        for c in &self.curves {
            let points: Vec<String> = c
                .points
                .iter()
                .map(|p| format!("[{},{}]", p.capacity_lines, json_f64(p.miss_ratio)))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"curve\",\"workload\":{},\"events\":{},\"sampled_events\":{},\"distinct_lines\":{},\"points\":[{}]}}\n",
                json_string(&c.workload),
                c.events,
                c.sampled_events,
                c.distinct_lines,
                points.join(","),
            ));
        }
        for cell in &self.cells {
            out.push_str(&format!(
                "{{\"type\":\"cell\",\"config\":{},\"workload\":{},\"capacity_lines\":{},\"mrc_miss_ratio\":{},\"mct_capacity_ratio\":{},\"real_miss_ratio\":{}}}\n",
                json_string(&cell.config),
                json_string(&cell.workload),
                cell.capacity_lines,
                json_f64(cell.mrc_miss_ratio),
                json_f64(cell.mct_capacity_ratio),
                json_f64(cell.real_miss_ratio),
            ));
        }
        out
    }
}

fn pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

impl std::fmt::Display for MrcRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Miss-ratio curves ({} engine{}, {} events/workload)\n",
            self.mode(),
            self.sample.map(|r| format!(", R={r}")).unwrap_or_default(),
            self.events
        )?;
        let mut header = vec!["workload".to_owned(), "lines".to_owned()];
        header.extend(CAPACITY_LADDER.iter().map(|c| format!("{c}L miss%")));
        let mut curve_table = Table::new(header);
        for c in &self.curves {
            let mut row = vec![c.workload.clone(), c.distinct_lines.to_string()];
            row.extend(c.points.iter().map(|p| pct(p.miss_ratio)));
            curve_table.row(row);
        }
        write!(f, "{curve_table}")?;

        writeln!(
            f,
            "\nMRC capacity-miss estimate vs. MCT capacity labelling\n"
        )?;
        let mut cross = Table::new(
            [
                "config",
                "lines",
                "avg MRC%",
                "avg MCT cap%",
                "max gap%",
                "worst workload",
            ]
            .map(str::to_owned)
            .to_vec(),
        );
        for (config, _) in crate::fig1::configurations() {
            let cells: Vec<&CapacityCell> =
                self.cells.iter().filter(|c| c.config == config).collect();
            if cells.is_empty() {
                continue;
            }
            let n = cells.len() as f64;
            let avg_mrc = cells.iter().map(|c| c.mrc_miss_ratio).sum::<f64>() / n;
            let avg_mct = cells.iter().map(|c| c.mct_capacity_ratio).sum::<f64>() / n;
            let worst = cells
                .iter()
                .max_by(|a, b| a.gap().total_cmp(&b.gap()))
                .expect("non-empty cells");
            cross.row(vec![
                config,
                cells[0].capacity_lines.to_string(),
                pct(avg_mrc),
                pct(avg_mct),
                pct(worst.gap()),
                worst.workload.clone(),
            ]);
        }
        write!(f, "{cross}")?;
        writeln!(
            f,
            "\nMRC column = fully-associative miss ratio at the geometry's capacity\n(compulsory + capacity); the gap is the MCT's capacity-side labelling error."
        )
    }
}

/// Renders a human-readable report of an `mrc-repro/1` JSONL
/// document — the logic behind `obs mrc FILE`.
///
/// Tolerance matches [`crate::obs::summarize`]: a torn final line (a
/// crash mid-write) and record lines from a foreign schema are
/// skipped with a warning; an unparseable interior line, a wrong or
/// missing header, or an empty file are errors.
///
/// # Errors
///
/// Returns a message when the input is empty, has a non-`mrc-repro/1`
/// header, or contains an unparseable non-final line.
pub fn render(text: &str) -> Result<String, String> {
    use crate::jsonl::{self, Value};

    let mut warnings: Vec<String> = Vec::new();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut values = Vec::with_capacity(lines.len());
    for (pos, &(lineno, line)) in lines.iter().enumerate() {
        match jsonl::parse(line) {
            Ok(v) => values.push(v),
            Err(e) if pos + 1 == lines.len() => {
                warnings.push(format!("skipped torn final line {}: {e}", lineno + 1));
            }
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        }
    }
    let header = values.first().ok_or("empty mrc file")?;
    let schema = header.str_field("schema").unwrap_or("<missing>");
    if schema != sim_core::registry::SCHEMA_MRC {
        return Err(format!(
            "expected schema {}, found {schema}",
            sim_core::registry::SCHEMA_MRC
        ));
    }
    let mode = header.str_field("mode").unwrap_or("?").to_owned();

    struct CurveRow {
        workload: String,
        distinct_lines: u64,
        points: Vec<(u64, f64)>,
    }
    let mut curves: Vec<CurveRow> = Vec::new();
    let mut cells: Vec<CapacityCell> = Vec::new();
    let mut foreign = 0u64;
    for v in &values[1..] {
        match v.str_field("type") {
            Some("curve") => {
                let points = v
                    .get("points")
                    .and_then(Value::as_array)
                    .map(|pairs| {
                        pairs
                            .iter()
                            .filter_map(|p| {
                                let p = p.as_array()?;
                                Some((p.first()?.as_u64()?, p.get(1)?.as_f64()?))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                curves.push(CurveRow {
                    workload: v.str_field("workload").unwrap_or("?").to_owned(),
                    distinct_lines: v.u64_field("distinct_lines").unwrap_or(0),
                    points,
                });
            }
            Some("cell") => {
                let f = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
                cells.push(CapacityCell {
                    config: v.str_field("config").unwrap_or("?").to_owned(),
                    workload: v.str_field("workload").unwrap_or("?").to_owned(),
                    capacity_lines: v.u64_field("capacity_lines").unwrap_or(0),
                    mrc_miss_ratio: f("mrc_miss_ratio"),
                    mct_capacity_ratio: f("mct_capacity_ratio"),
                    real_miss_ratio: f("real_miss_ratio"),
                });
            }
            _ => foreign += 1,
        }
    }
    if foreign > 0 {
        warnings.push(format!(
            "skipped {foreign} foreign/unrecognized record line(s)"
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{}  mode={mode}{}  events/workload={}  curves={}  cells={}\n",
        sim_core::registry::SCHEMA_MRC,
        if mode == "sampled" {
            header
                .get("sample_rate")
                .and_then(Value::as_f64)
                .map(|r| format!(" rate={r}"))
                .unwrap_or_default()
        } else {
            String::new()
        },
        header.u64_field("events").unwrap_or(0),
        curves.len(),
        cells.len(),
    ));
    for w in &warnings {
        out.push_str(&format!("warning: {w}\n"));
    }
    out.push('\n');

    // Column ladder: the union of capacities across curves, in first
    // appearance order (every emitter uses one ladder for all curves).
    let mut ladder: Vec<u64> = Vec::new();
    for c in &curves {
        for &(cap, _) in &c.points {
            if !ladder.contains(&cap) {
                ladder.push(cap);
            }
        }
    }
    if !curves.is_empty() {
        let mut header = vec!["workload".to_owned(), "lines".to_owned()];
        header.extend(ladder.iter().map(|c| format!("{c}L miss%")));
        let mut table = Table::new(header);
        for c in &curves {
            let mut row = vec![c.workload.clone(), c.distinct_lines.to_string()];
            for cap in &ladder {
                row.push(
                    c.points
                        .iter()
                        .find(|(pc, _)| pc == cap)
                        .map(|&(_, r)| pct(r))
                        .unwrap_or_else(|| "-".to_owned()),
                );
            }
            table.row(row);
        }
        out.push_str(&table.to_string());
    }

    if !cells.is_empty() {
        out.push_str("\nMRC capacity-miss estimate vs. MCT capacity labelling\n");
        let mut table = Table::new(
            [
                "config",
                "workload",
                "lines",
                "MRC%",
                "MCT cap%",
                "real miss%",
                "gap%",
            ]
            .map(str::to_owned)
            .to_vec(),
        );
        for c in &cells {
            table.row(vec![
                c.config.clone(),
                c.workload.clone(),
                c.capacity_lines.to_string(),
                pct(c.mrc_miss_ratio),
                pct(c.mct_capacity_ratio),
                pct(c.real_miss_ratio),
                pct(c.gap()),
            ]);
        }
        out.push_str(&table.to_string());

        let worst = cells
            .iter()
            .max_by(|a, b| a.gap().total_cmp(&b.gap()))
            .expect("non-empty cells");
        out.push_str(&format!(
            "\nworst capacity-labelling gap: {} on {} ({} lines): {} pp\n",
            worst.workload,
            worst.config,
            worst.capacity_lines,
            pct(worst.gap()),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_covers_paper_geometries() {
        for (_, geom) in crate::fig1::configurations() {
            assert!(
                CAPACITY_LADDER.contains(&(geom.num_lines() as u64)),
                "{} lines missing from ladder",
                geom.num_lines()
            );
        }
    }

    #[test]
    fn small_run_has_sane_shape() {
        let run = run(2_000, None);
        let suite = workload_suite().len();
        assert_eq!(run.curves.len(), suite);
        assert_eq!(run.cells.len(), 4 * suite);
        for c in &run.curves {
            assert_eq!(c.points.len(), CAPACITY_LADDER.len());
            // Miss ratios fall (weakly) as capacity grows.
            for pair in c.points.windows(2) {
                assert!(pair[1].miss_ratio <= pair[0].miss_ratio + 1e-12);
            }
        }
        let display = run.to_string();
        assert!(display.contains("tomcatv"));
        assert!(display.contains("working_set_512"));
        assert!(display.contains("16KB DM"));
    }

    #[test]
    fn sampled_run_reports_reduced_state() {
        let exact = run(2_000, None);
        let sampled = run(2_000, Some(0.05));
        assert_eq!(sampled.mode(), "sampled");
        let sum = |r: &MrcRun| r.curves.iter().map(|c| c.distinct_lines).sum::<u64>();
        assert!(
            sum(&sampled) < sum(&exact),
            "sampling should shrink the resident index ({} vs {})",
            sum(&sampled),
            sum(&exact)
        );
    }

    #[test]
    fn render_round_trips_a_run() {
        let run = run(1_500, None);
        let report = render(&run.to_jsonl()).expect("renderable");
        assert!(report.contains("mrc-repro/1  mode=exact"), "{report}");
        assert!(report.contains("tomcatv"), "{report}");
        assert!(report.contains("16KB DM"), "{report}");
        assert!(report.contains("worst capacity-labelling gap"), "{report}");
    }

    #[test]
    fn render_rejects_bad_input() {
        assert!(render("").unwrap_err().contains("empty mrc file"));
        let err = render("{\"schema\":\"obs-repro/1\"}\n").unwrap_err();
        assert!(err.contains("mrc-repro/1"), "{err}");
        // Torn interior line is an error; torn final line a warning.
        let good = run(1_000, Some(0.5)).to_jsonl();
        let mut torn_final = good.clone();
        torn_final.push_str("{\"type\":\"cell\",\"conf");
        let report = render(&torn_final).expect("tolerated");
        assert!(report.contains("skipped torn final line"), "{report}");
        let mut torn_middle = String::from("{\"type\nonsense\n");
        torn_middle.insert_str(0, good.lines().next().unwrap());
        assert!(render(&torn_middle).is_err());
    }

    #[test]
    fn render_warns_on_foreign_records() {
        let mut text = run(1_000, None).to_jsonl();
        text.push_str("{\"type\":\"span\",\"scope\":\"cell\"}\n{\"type\":\"totals\"}\n");
        let report = render(&text).expect("tolerated");
        assert!(
            report.contains("skipped 2 foreign/unrecognized record line(s)"),
            "{report}"
        );
    }

    #[test]
    fn jsonl_header_carries_canonical_schema() {
        let run = run(1_000, Some(0.5));
        let jsonl = run.to_jsonl();
        let values = crate::jsonl::parse_lines(&jsonl).expect("valid jsonl");
        assert_eq!(
            values[0].str_field("schema"),
            sim_core::registry::canonical_schema("mrc")
        );
        assert_eq!(values[0].str_field("mode"), Some("sampled"));
        assert_eq!(values.len(), 1 + run.curves.len() + run.cells.len());
    }
}
