//! §5.4: the pseudo-associative cache with conflict-bit replacement.
//!
//! Paper reference points: the modified policy improved the average
//! miss rate from 10.22% to 9.83% and performance by 1.5% on average,
//! running only 0.9% slower than a true 2-way cache (with tomcatv,
//! turb3d and wave5 beating the 2-way cache).

use cpu_model::{BaselineSystem, CpuReport};
use pseudo_assoc::{PseudoAssocSystem, PseudoConfig, PseudoPolicy};
use sim_core::stats::GeoMean;
use workloads::suite;

use crate::table::{pct, speedup};
use crate::{drive, Table};

/// Per-benchmark numbers for the §5.4 comparison.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: String,
    /// Direct-mapped baseline miss rate.
    pub dm_miss: f64,
    /// Base pseudo-associative miss rate.
    pub base_miss: f64,
    /// Conflict-bit pseudo-associative miss rate.
    pub modified_miss: f64,
    /// True 2-way miss rate.
    pub two_way_miss: f64,
    /// Modified-over-base speedup.
    pub speedup_mod_over_base: f64,
    /// Modified-over-2-way speedup (< 1 means slower than 2-way).
    pub speedup_mod_over_two_way: f64,
}

/// The §5.4 reproduction.
#[derive(Debug, Clone)]
pub struct Sec54 {
    /// One row per benchmark.
    pub rows: Vec<BenchRow>,
    /// Average miss rates (base pseudo, modified pseudo, 2-way).
    pub avg_miss: (f64, f64, f64),
    /// Geometric-mean speedups (modified/base, modified/2-way).
    pub mean_speedups: (f64, f64),
    /// Events per workload.
    pub events: usize,
}

/// Trace events this section simulates: four runs (DM, base pseudo,
/// modified pseudo, true 2-way) per workload.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    (4 * suite().len() * events) as u64
}

/// Runs the §5.4 experiment.
#[must_use]
pub fn run(events: usize) -> Sec54 {
    let benchmarks = suite();
    let mut base_sum = 0.0;
    let mut mod_sum = 0.0;
    let mut two_sum = 0.0;
    let mut mean_base = GeoMean::default();
    let mut mean_two = GeoMean::default();

    let rows: Vec<BenchRow> = crate::par_map(benchmarks, |w| {
        let w = &w;
        let mut dm = BaselineSystem::paper_default().expect("paper config");
        let _dm_report: CpuReport = crate::probe::cell(
            "sec54",
            || format!("dm/{}", w.name()),
            || drive(&mut dm, w, events),
        );

        let mut base = PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::Lru))
            .expect("paper config");
        let base_report = crate::probe::cell(
            "sec54",
            || format!("pseudo-lru/{}", w.name()),
            || drive(&mut base, w, events),
        );

        let mut modified =
            PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::ConflictBit))
                .expect("paper config");
        let mod_report = crate::probe::cell(
            "sec54",
            || format!("pseudo-cbit/{}", w.name()),
            || drive(&mut modified, w, events),
        );

        let mut two_way = BaselineSystem::paper_two_way().expect("paper config");
        let two_report = crate::probe::cell(
            "sec54",
            || format!("two-way/{}", w.name()),
            || drive(&mut two_way, w, events),
        );

        BenchRow {
            name: w.name().to_owned(),
            dm_miss: dm.l1_stats().miss_rate(),
            base_miss: base.stats().miss_rate(),
            modified_miss: modified.stats().miss_rate(),
            two_way_miss: two_way.l1_stats().miss_rate(),
            speedup_mod_over_base: mod_report.speedup_over(&base_report),
            speedup_mod_over_two_way: mod_report.speedup_over(&two_report),
        }
    });
    for row in &rows {
        base_sum += row.base_miss;
        mod_sum += row.modified_miss;
        two_sum += row.two_way_miss;
        mean_base.push(row.speedup_mod_over_base);
        mean_two.push(row.speedup_mod_over_two_way);
    }

    let n = rows.len() as f64;
    Sec54 {
        rows,
        avg_miss: (base_sum / n, mod_sum / n, two_sum / n),
        mean_speedups: (mean_base.mean(), mean_two.mean()),
        events,
    }
}

impl std::fmt::Display for Sec54 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Section 5.4: pseudo-associative cache with conflict-bit replacement ({} events/workload)\n",
            self.events
        )?;
        let mut table = Table::new(vec![
            "benchmark".into(),
            "DM miss%".into(),
            "pseudo miss%".into(),
            "MCT-pseudo miss%".into(),
            "2-way miss%".into(),
            "spd vs pseudo".into(),
            "spd vs 2-way".into(),
        ]);
        for r in &self.rows {
            table.row(vec![
                r.name.clone(),
                pct(r.dm_miss),
                pct(r.base_miss),
                pct(r.modified_miss),
                pct(r.two_way_miss),
                speedup(r.speedup_mod_over_base),
                speedup(r.speedup_mod_over_two_way),
            ]);
        }
        table.row(vec![
            "AVERAGE".into(),
            "-".into(),
            pct(self.avg_miss.0),
            pct(self.avg_miss.1),
            pct(self.avg_miss.2),
            speedup(self.mean_speedups.0),
            speedup(self.mean_speedups.1),
        ]);
        write!(f, "{table}")?;
        writeln!(
            f,
            "\npaper: avg miss 10.22% -> 9.83%; +1.5% speedup; within 0.9% of true 2-way"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modified_not_worse_than_base_on_average() {
        let r = run(4_000);
        let (base, modified, _two) = r.avg_miss;
        assert!(
            modified <= base + 0.002,
            "modified {modified} vs base {base}"
        );
        assert!(r.mean_speedups.0 > 0.98);
        assert!(r.to_string().contains("AVERAGE"));
    }
}
