//! Figure 3 and Table 1: victim-cache policies under conflict
//! classification.
//!
//! Paper reference points: the combined filter policy gains ~3% over a
//! traditional victim cache; filtering fills cuts fills from 6.6% to
//! 2.6% of accesses; filtering swaps cuts swaps from 1.7% to 0.1%
//! while shifting hits from the cache to the buffer.

use cpu_model::{BaselineSystem, CpuReport};
use sim_core::stats::GeoMean;
use victim_cache::{VictimConfig, VictimPolicy, VictimStats, VictimSystem};
use workloads::{suite, Workload};

use crate::table::{pct, speedup};
use crate::{drive, Table};

/// Results for one victim policy.
#[derive(Debug, Clone)]
pub struct PolicyResult {
    /// The policy.
    pub policy: VictimPolicy,
    /// Per-benchmark speedups over the no-victim-cache baseline.
    pub speedups: Vec<(String, f64)>,
    /// Geometric-mean speedup.
    pub mean_speedup: f64,
    /// Suite-aggregated Table 1 counters.
    pub stats: VictimStats,
}

/// The Figure 3 + Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Baseline (no victim cache) hit rate, suite-aggregated.
    pub baseline_hit_rate: f64,
    /// One result per policy, in the paper's bar order.
    pub policies: Vec<PolicyResult>,
    /// Events per workload.
    pub events: usize,
}

/// Trace events this figure simulates: the no-victim baseline plus
/// one run per victim policy, per workload.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    ((1 + VictimPolicy::ALL.len()) * suite().len() * events) as u64
}

fn run_baseline(w: &Workload, events: usize) -> (CpuReport, f64) {
    let mut sys = BaselineSystem::paper_default().expect("paper config");
    let report = drive(&mut sys, w, events);
    (report, sys.l1_stats().hit_rate())
}

/// Runs the Figure 3 / Table 1 experiment.
#[must_use]
pub fn run(events: usize) -> Fig3 {
    let benchmarks = suite();
    let baselines: Vec<(CpuReport, f64)> = crate::par_map(benchmarks.clone(), |w| {
        crate::probe::cell(
            "fig3",
            || format!("baseline/{}", w.name()),
            || run_baseline(&w, events),
        )
    });
    let mut base_hits = 0.0;
    for (_, hr) in &baselines {
        base_hits += hr;
    }
    let baseline_hit_rate = base_hits / baselines.len() as f64;

    let policies = crate::par_map(VictimPolicy::ALL.to_vec(), |policy| {
        let mut speedups = Vec::new();
        let mut mean = GeoMean::default();
        let mut agg = VictimStats::default();
        for (w, (base_report, _)) in benchmarks.iter().zip(&baselines) {
            let (report, st) = crate::probe::cell(
                "fig3",
                || format!("{policy}/{}", w.name()),
                || {
                    let mut sys = VictimSystem::paper_default(VictimConfig::new(policy))
                        .expect("paper config");
                    let report = drive(&mut sys, w, events);
                    (report, *sys.stats())
                },
            );
            let s = report.speedup_over(base_report);
            mean.push(s);
            speedups.push((w.name().to_owned(), s));
            let st = &st;
            agg.accesses += st.accesses;
            agg.d_hits += st.d_hits;
            agg.v_hits += st.v_hits;
            agg.swaps += st.swaps;
            agg.fills += st.fills;
        }
        PolicyResult {
            policy,
            speedups,
            mean_speedup: mean.mean(),
            stats: agg,
        }
    });

    Fig3 {
        baseline_hit_rate,
        policies,
        events,
    }
}

impl std::fmt::Display for Fig3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 3: victim cache policies, speedup over no victim cache ({} events/workload)\n",
            self.events
        )?;
        let mut fig = Table::new(vec![
            "benchmark".into(),
            "V cache".into(),
            "filter swaps".into(),
            "filter fills".into(),
            "filter both".into(),
        ]);
        let names: Vec<&String> = self.policies[0].speedups.iter().map(|(n, _)| n).collect();
        for (i, name) in names.iter().enumerate() {
            fig.row(vec![
                (*name).clone(),
                speedup(self.policies[0].speedups[i].1),
                speedup(self.policies[1].speedups[i].1),
                speedup(self.policies[2].speedups[i].1),
                speedup(self.policies[3].speedups[i].1),
            ]);
        }
        fig.row(vec![
            "GEOMEAN".into(),
            speedup(self.policies[0].mean_speedup),
            speedup(self.policies[1].mean_speedup),
            speedup(self.policies[2].mean_speedup),
            speedup(self.policies[3].mean_speedup),
        ]);
        write!(f, "{fig}")?;

        writeln!(
            f,
            "\nTable 1: hit rates and swap/fill traffic (% of accesses)\n"
        )?;
        let mut tab = Table::new(vec![
            "policy".into(),
            "D$ HR".into(),
            "V$ HR".into(),
            "total".into(),
            "swaps".into(),
            "fills".into(),
        ]);
        tab.row(vec![
            "no V cache".into(),
            pct(self.baseline_hit_rate),
            "0".into(),
            pct(self.baseline_hit_rate),
            "0".into(),
            "0".into(),
        ]);
        for p in &self.policies {
            tab.row(vec![
                p.policy.to_string(),
                pct(p.stats.d_hit_rate()),
                pct(p.stats.v_hit_rate()),
                pct(p.stats.total_hit_rate()),
                pct(p.stats.swap_rate()),
                pct(p.stats.fill_rate()),
            ]);
        }
        write!(f, "{tab}")?;
        writeln!(
            f,
            "\npaper Table 1: V cache 88.2/6.4/94.7/1.7/6.6; filter both 80.8/13.6/94.4/0.1/2.6"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_on_small_run() {
        let fig = run(4_000);
        assert_eq!(fig.policies.len(), 4);
        let trad = &fig.policies[0];
        let both = &fig.policies[3];
        // Filtering must cut swaps and fills.
        assert!(both.stats.swap_rate() <= trad.stats.swap_rate());
        assert!(both.stats.fill_rate() <= trad.stats.fill_rate());
        let display = fig.to_string();
        assert!(display.contains("GEOMEAN"));
        assert!(display.contains("no V cache"));
    }
}
