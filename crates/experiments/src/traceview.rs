//! Analytics over `trace-repro/1` documents: the `obs timeline`,
//! `obs flame`, and `obs phases` subcommands, the `obs diff` bench
//! comparator, and the `obs verify-trace` CI check.
//!
//! Everything here is a pure function from document text to report
//! text, so each view is golden-testable against a committed fixture
//! trace (`tests/obs_trace_golden.rs`).

use std::collections::BTreeMap;

use crate::jsonl::{self, Value};

/// One `{"type":"span"}` line of a `trace-repro/1` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// Scope kind wire name (`sweep`/`figure`/`cell`/`subsystem`).
    pub scope: String,
    /// Owning target.
    pub target: String,
    /// Scope label.
    pub label: String,
    /// Scheduler worker lane.
    pub worker: u32,
    /// Registered span name.
    pub name: String,
    /// 1-based id within the scope.
    pub id: u32,
    /// Parent span id (0 = scope root).
    pub parent: u32,
    /// Nesting depth.
    pub depth: u32,
    /// Start, span-clock nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Events attributed to the span.
    pub events: u64,
}

/// A parsed `trace-repro/1` document.
#[derive(Debug, Clone)]
pub struct TraceDoc {
    /// Whether the producing run used the logical (zero) clock.
    pub logical: bool,
    /// Every span line, in document (drain) order.
    pub spans: Vec<SpanRow>,
}

const SCOPE_KINDS: [&str; 4] = ["sweep", "figure", "cell", "subsystem"];

fn u32_field(v: &Value, key: &str) -> Result<u32, String> {
    v.u64_field(key)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| format!("span record missing/invalid {key:?}"))
}

/// Parses a `trace-repro/1` document, tolerating (and skipping) the
/// metrics and totals records.
///
/// # Errors
///
/// An empty document, a wrong schema header, or a malformed span line
/// is an error — traces are machine-written, so damage means the run
/// itself went wrong.
pub fn parse(text: &str) -> Result<TraceDoc, String> {
    let values = jsonl::parse_lines(text)?;
    let header = values.first().ok_or("empty trace file")?;
    match header.str_field("schema") {
        Some(s) if s == sim_core::registry::SCHEMA_TRACE => {}
        Some(other) => return Err(format!("unsupported trace schema {other:?}")),
        None => {
            return Err(format!(
                "first line is not a {} header",
                sim_core::registry::SCHEMA_TRACE
            ))
        }
    }
    let logical = matches!(header.get("logical"), Some(Value::Bool(true)));
    let mut spans = Vec::new();
    for v in &values[1..] {
        match v.str_field("type") {
            Some("span") => {
                let scope = v
                    .str_field("scope")
                    .ok_or("span record missing \"scope\"")?
                    .to_owned();
                spans.push(SpanRow {
                    scope,
                    target: v.str_field("target").unwrap_or_default().to_owned(),
                    label: v.str_field("label").unwrap_or_default().to_owned(),
                    worker: u32_field(v, "worker")?,
                    name: v
                        .str_field("name")
                        .ok_or("span record missing \"name\"")?
                        .to_owned(),
                    id: u32_field(v, "id")?,
                    parent: u32_field(v, "parent")?,
                    depth: u32_field(v, "depth")?,
                    start_ns: v.u64_field("start_ns").unwrap_or(0),
                    dur_ns: v.u64_field("dur_ns").unwrap_or(0),
                    events: v.u64_field("events").unwrap_or(0),
                });
            }
            Some("metrics" | "totals") => {}
            other => return Err(format!("unrecognized trace record type {other:?}")),
        }
    }
    Ok(TraceDoc { logical, spans })
}

/// Strict validation for CI: every line must round-trip the JSONL
/// reader, the header must carry the pinned schema, every span name
/// must carry a registered component prefix, every scope kind must be
/// known, and the totals footer must match the counted spans.
///
/// # Errors
///
/// The first violated property, as a message naming it.
pub fn verify(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let mut scopes = 0u64;
    for row in &doc.spans {
        if !sim_core::span::name_registered(&row.name) {
            return Err(format!(
                "span name {:?} lacks a registered prefix (expected one of {:?})",
                row.name,
                sim_core::span::NAME_PREFIXES
            ));
        }
        if !SCOPE_KINDS.contains(&row.scope.as_str()) {
            return Err(format!("unknown scope kind {:?}", row.scope));
        }
        if row.parent == 0 {
            scopes += 1;
        }
    }
    let values = jsonl::parse_lines(text)?;
    if let Some(totals) = values
        .iter()
        .find(|v| v.str_field("type") == Some("totals"))
    {
        let counted = doc.spans.len() as u64;
        if totals.u64_field("spans") != Some(counted) {
            return Err(format!(
                "totals footer claims {:?} spans but the document carries {counted}",
                totals.u64_field("spans")
            ));
        }
    } else {
        return Err("missing totals footer".to_owned());
    }
    Ok(format!(
        "trace OK: {scopes} scopes, {} spans, all names registered\n",
        doc.spans.len()
    ))
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.0}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (s, e) in iv {
        if let Some(last) = out.last_mut() {
            if s <= last.1 {
                last.1 = last.1.max(e);
                continue;
            }
        }
        out.push((s, e));
    }
    out
}

const LANE_WIDTH: u64 = 60;

/// Renders per-worker span lanes with utilization percentages: one
/// ASCII lane per worker, `#` where the worker had at least one open
/// scope, over the window spanned by the whole trace.
///
/// # Errors
///
/// Propagates [`parse`] failures.
pub fn timeline(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let roots: Vec<&SpanRow> = doc.spans.iter().filter(|s| s.parent == 0).collect();
    if roots.is_empty() {
        return Err("trace has no scopes to lay out".to_owned());
    }
    let start = roots.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let end = roots
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .max()
        .unwrap_or(0);
    let window = end.saturating_sub(start);
    let mut out = String::new();
    if window == 0 {
        out.push_str(if doc.logical {
            "timeline: logical clock (durations zeroed); lanes unavailable\n"
        } else {
            "timeline: zero-length window; lanes unavailable\n"
        });
        let workers: std::collections::BTreeSet<u32> = roots.iter().map(|s| s.worker).collect();
        out.push_str(&format!(
            "{} scopes across {} worker(s)\n",
            roots.len(),
            workers.len()
        ));
        return Ok(out);
    }
    let mut lanes: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for s in &roots {
        lanes
            .entry(s.worker)
            .or_default()
            .push((s.start_ns, s.start_ns + s.dur_ns));
        *counts.entry(s.worker).or_default() += 1;
    }
    out.push_str(&format!(
        "timeline: {} worker lane(s), window {}\n",
        lanes.len(),
        fmt_ns(window)
    ));
    for (worker, iv) in &lanes {
        let merged = merge_intervals(iv.clone());
        let busy: u64 = merged.iter().map(|(s, e)| e - s).sum();
        let mut lane = String::with_capacity(LANE_WIDTH as usize);
        for col in 0..LANE_WIDTH {
            let c0 = start + col * window / LANE_WIDTH;
            let c1 = start + (col + 1) * window / LANE_WIDTH;
            let hit = merged.iter().any(|&(s, e)| s < c1.max(c0 + 1) && e > c0);
            lane.push(if hit { '#' } else { '.' });
        }
        out.push_str(&format!(
            "worker {worker:>3} |{lane}| busy {:>9} ({:5.1}%)  scopes {}\n",
            fmt_ns(busy),
            busy as f64 / window as f64 * 100.0,
            counts.get(worker).copied().unwrap_or(0),
        ));
    }
    Ok(out)
}

/// Renders folded stacks (`target;label;span;chain value_ns`), one
/// line per distinct stack, aggregated and sorted — the input format
/// of `flamegraph.pl` and speedscope. Values are *self* nanoseconds
/// (a span's duration minus its children's).
///
/// # Errors
///
/// Propagates [`parse`] failures.
pub fn flame(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut scope_rows: Vec<&SpanRow> = Vec::new();
    fn flush(rows: &[&SpanRow], folded: &mut BTreeMap<String, u64>) {
        // rows is one scope's spans; ids are 1-based into this slice.
        for row in rows {
            let child_ns: u64 = rows
                .iter()
                .filter(|r| r.parent == row.id)
                .map(|r| r.dur_ns)
                .sum();
            let self_ns = row.dur_ns.saturating_sub(child_ns);
            // Walk parents up to the root to build the frame path.
            let mut names = vec![row.name.as_str()];
            let mut at = row.parent;
            while at != 0 {
                let Some(parent) = rows.iter().find(|r| r.id == at) else {
                    break;
                };
                names.push(parent.name.as_str());
                at = parent.parent;
            }
            names.reverse();
            let mut stack = row.target.clone();
            if !row.label.is_empty() {
                stack.push(';');
                stack.push_str(&row.label);
            }
            for n in names {
                stack.push(';');
                stack.push_str(n);
            }
            *folded.entry(stack).or_default() += self_ns;
        }
    }
    for row in &doc.spans {
        if row.parent == 0 && !scope_rows.is_empty() {
            flush(&scope_rows, &mut folded);
            scope_rows.clear();
        }
        scope_rows.push(row);
    }
    if !scope_rows.is_empty() {
        flush(&scope_rows, &mut folded);
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        out.push_str(&format!("{stack} {ns}\n"));
    }
    Ok(out)
}

/// Renders the per-phase aggregate table: call count, total and self
/// time, attributed events, and events/s per registered span name,
/// sorted by total time (then name).
///
/// # Errors
///
/// Propagates [`parse`] failures.
pub fn phases(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    #[derive(Default)]
    struct Agg {
        calls: u64,
        total_ns: u64,
        self_ns: u64,
        events: u64,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    // Self time needs each span's children; group rows per scope (a
    // new scope starts at each parent==0 row, in document order).
    let mut scope_start = 0usize;
    for i in 0..=doc.spans.len() {
        let scope_done = i == doc.spans.len() || (doc.spans[i].parent == 0 && i > scope_start);
        if !scope_done {
            continue;
        }
        let rows = &doc.spans[scope_start..i];
        for row in rows {
            let child_ns: u64 = rows
                .iter()
                .filter(|r| r.parent == row.id)
                .map(|r| r.dur_ns)
                .sum();
            let agg = by_name.entry(row.name.as_str()).or_default();
            agg.calls += 1;
            agg.total_ns += row.dur_ns;
            agg.self_ns += row.dur_ns.saturating_sub(child_ns);
            agg.events += row.events;
        }
        scope_start = i;
    }
    let mut rows: Vec<(&str, Agg)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>8} {:>10} {:>10} {:>12} {:>10}\n",
        "phase", "calls", "total", "self", "events", "events/s"
    ));
    for (name, agg) in rows {
        let rate = if agg.total_ns > 0 {
            fmt_rate(agg.events as f64 / (agg.total_ns as f64 / 1e9))
        } else {
            "n/a".to_owned()
        };
        out.push_str(&format!(
            "{name:<20} {:>8} {:>10} {:>10} {:>12} {rate:>10}\n",
            agg.calls,
            fmt_ns(agg.total_ns),
            fmt_ns(agg.self_ns),
            agg.events,
        ));
    }
    Ok(out)
}

fn bench_figures(doc: &Value) -> Result<Vec<(String, f64)>, String> {
    let figures = doc
        .get("figures")
        .and_then(Value::as_array)
        .ok_or("bench file has no \"figures\" array")?;
    let mut out = Vec::new();
    for f in figures {
        let name = f
            .str_field("name")
            .ok_or("figure entry missing \"name\"")?
            .to_owned();
        let rate = f
            .get("events_per_sec")
            .and_then(Value::as_f64)
            .ok_or("figure entry missing \"events_per_sec\"")?;
        out.push((name, rate));
    }
    Ok(out)
}

fn bench_total(doc: &Value) -> Option<f64> {
    doc.get("total")?.get("events_per_sec")?.as_f64()
}

/// A bench comparison: the rendered per-figure table plus the total
/// events/s delta the CI regression gate (`obs diff --fail-above`)
/// judges.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// The per-figure delta table [`diff`] renders.
    pub table: String,
    /// Total events/s change in percent (`new / old - 1`, × 100), or
    /// `None` when either report lacks a positive total. Per-figure
    /// rows stay informational — single figures are too noisy on
    /// shared CI boxes to gate on; the whole-sweep total is stable.
    pub total_delta_pct: Option<f64>,
}

/// Renders the per-figure events/s delta table between two
/// `bench-repro/2` documents (`obs diff OLD.json NEW.json`) — the
/// tested replacement for the CI bench step's sed/awk pipeline.
///
/// # Errors
///
/// Either document failing to parse as a bench report.
pub fn diff(old_text: &str, new_text: &str) -> Result<String, String> {
    diff_report(old_text, new_text).map(|report| report.table)
}

/// [`diff`] plus the machine-readable total delta (see
/// [`DiffReport`]).
///
/// # Errors
///
/// Either document failing to parse as a bench report.
pub fn diff_report(old_text: &str, new_text: &str) -> Result<DiffReport, String> {
    let old = jsonl::parse(old_text).map_err(|e| format!("old bench file: {e}"))?;
    let new = jsonl::parse(new_text).map_err(|e| format!("new bench file: {e}"))?;
    for (doc, which) in [(&old, "old"), (&new, "new")] {
        match doc.str_field("schema") {
            Some(s) if s.starts_with("bench-repro/") => {}
            other => return Err(format!("{which} bench file has schema {other:?}")),
        }
    }
    let old_figs: BTreeMap<String, f64> = bench_figures(&old)?.into_iter().collect();
    let mut out = String::new();
    let mut row = |name: &str, old_rate: Option<f64>, new_rate: f64| match old_rate {
        Some(o) if o > 0.0 => {
            out.push_str(&format!(
                "{name:<10} old {o:>12.0} ev/s  new {new_rate:>12.0} ev/s  delta {:>+7.1}%\n",
                (new_rate / o - 1.0) * 100.0
            ));
        }
        _ => {
            out.push_str(&format!(
                "{name:<10} old {:>12} ev/s  new {new_rate:>12.0} ev/s  delta {:>8}\n",
                "-", "n/a"
            ));
        }
    };
    for (name, new_rate) in bench_figures(&new)? {
        row(&name, old_figs.get(&name).copied(), new_rate);
    }
    let mut total_delta_pct = None;
    if let Some(new_total) = bench_total(&new) {
        let old_total = bench_total(&old);
        row("total", old_total, new_total);
        total_delta_pct = old_total
            .filter(|&o| o > 0.0)
            .map(|o| (new_total / o - 1.0) * 100.0);
    }
    Ok(DiffReport {
        table: out,
        total_delta_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        concat!(
            "{\"schema\":\"trace-repro/1\",\"logical\":false,\"events_per_workload\":2000,\"targets\":[\"fig1\"]}\n",
            "{\"type\":\"span\",\"scope\":\"cell\",\"target\":\"fig1\",\"label\":\"a\",\"worker\":1,\"name\":\"cell_run\",\"id\":1,\"parent\":0,\"depth\":0,\"start_ns\":0,\"dur_ns\":1000,\"events\":0}\n",
            "{\"type\":\"span\",\"scope\":\"cell\",\"target\":\"fig1\",\"label\":\"a\",\"worker\":1,\"name\":\"replay_block\",\"id\":2,\"parent\":1,\"depth\":1,\"start_ns\":100,\"dur_ns\":600,\"events\":2000}\n",
            "{\"type\":\"span\",\"scope\":\"cell\",\"target\":\"fig1\",\"label\":\"b\",\"worker\":2,\"name\":\"cell_run\",\"id\":1,\"parent\":0,\"depth\":0,\"start_ns\":500,\"dur_ns\":1500,\"events\":0}\n",
            "{\"type\":\"totals\",\"scopes\":2,\"spans\":3,\"events\":2000}\n",
        )
        .to_owned()
    }

    #[test]
    fn parse_and_verify_accept_a_valid_trace() {
        let doc = parse(&sample_trace()).expect("parses");
        assert_eq!(doc.spans.len(), 3);
        let report = verify(&sample_trace()).expect("verifies");
        assert!(report.contains("2 scopes"));
        assert!(report.contains("3 spans"));
    }

    #[test]
    fn verify_rejects_unregistered_names_and_bad_totals() {
        let bad_name = sample_trace().replace("replay_block", "mystery_phase");
        assert!(verify(&bad_name).unwrap_err().contains("mystery_phase"));
        let bad_totals = sample_trace().replace("\"spans\":3", "\"spans\":7");
        assert!(verify(&bad_totals).unwrap_err().contains("totals"));
        assert!(verify("").unwrap_err().contains("empty"));
    }

    #[test]
    fn timeline_lays_out_lanes() {
        let report = timeline(&sample_trace()).expect("timeline");
        assert!(report.contains("2 worker lane(s)"));
        assert!(report.contains("worker   1 |"));
        assert!(report.contains("worker   2 |"));
        assert!(report.contains('%'));
    }

    #[test]
    fn flame_emits_self_time_folded_stacks() {
        let report = flame(&sample_trace()).expect("flame");
        // cell_run self = 1000 - 600 child.
        assert!(report.contains("fig1;a;cell_run 400\n"), "{report}");
        assert!(report.contains("fig1;a;cell_run;replay_block 600\n"));
        assert!(report.contains("fig1;b;cell_run 1500\n"));
    }

    #[test]
    fn phases_aggregates_per_name() {
        let report = phases(&sample_trace()).expect("phases");
        let cell_line = report
            .lines()
            .find(|l| l.starts_with("cell_run"))
            .expect("cell_run row");
        assert!(cell_line.contains('2'), "two calls: {cell_line}");
        assert!(report.lines().next().unwrap_or("").contains("events/s"));
    }

    #[test]
    fn diff_compares_bench_files() {
        let old = "{\"schema\": \"bench-repro/2\", \"figures\": [{\"name\": \"fig1\", \"events_per_sec\": 100.0}], \"total\": {\"events_per_sec\": 100.0}}";
        let new = "{\"schema\": \"bench-repro/2\", \"figures\": [{\"name\": \"fig1\", \"events_per_sec\": 110.0}, {\"name\": \"fig9\", \"events_per_sec\": 50.0}], \"total\": {\"events_per_sec\": 160.0}}";
        let report = diff(old, new).expect("diff");
        assert!(report.contains("fig1"), "{report}");
        assert!(report.contains("+10.0%"), "{report}");
        assert!(report
            .lines()
            .any(|l| l.starts_with("fig9") && l.contains("n/a")));
        assert!(report.contains("total"));
        assert!(diff("not json", new).is_err());
    }
}
