//! Argument parsing and the figure-target registry for the `repro`
//! harness.
//!
//! Lives in the library (rather than the binary) so the parser and the
//! per-figure event accounting are unit-testable and reusable by other
//! harnesses (benches, future services).

use std::path::PathBuf;

use crate::probe::ProbeMode;
use crate::tracing::TraceFormat;

/// One runnable repro target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Figure 1: MCT classification accuracy.
    Fig1,
    /// Figure 2: accuracy vs saved tag bits.
    Fig2,
    /// Figure 3 + Table 1: victim-cache policies.
    Fig3,
    /// Figure 4: next-line prefetch filters.
    Fig4,
    /// Figure 5: cache-exclusion policies.
    Fig5,
    /// §5.4: pseudo-associative cache.
    Sec54,
    /// §5.6: co-scheduling on a shared cache.
    Sec56,
    /// Figures 6 + 7: adaptive miss buffer.
    Fig6,
    /// Extension ablations: shadow depth, CPU window, buffer size.
    Ablation,
}

impl Target {
    /// All targets, in the paper's order — what `all` expands to.
    pub const ALL: [Target; 9] = [
        Target::Fig1,
        Target::Fig2,
        Target::Fig3,
        Target::Fig4,
        Target::Fig5,
        Target::Sec54,
        Target::Sec56,
        Target::Fig6,
        Target::Ablation,
    ];

    /// Canonical name (as printed in telemetry and `BENCH_repro.json`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Target::Fig1 => "fig1",
            Target::Fig2 => "fig2",
            Target::Fig3 => "fig3",
            Target::Fig4 => "fig4",
            Target::Fig5 => "fig5",
            Target::Sec54 => "sec54",
            Target::Sec56 => "sec56",
            Target::Fig6 => "fig6",
            Target::Ablation => "ablation",
        }
    }

    /// Parses a target name, accepting the paper's aliases (`tab1` is
    /// part of the Figure 3 driver, `fig7` of the Figure 6 driver).
    #[must_use]
    pub fn parse(name: &str) -> Option<Target> {
        Some(match name {
            "fig1" => Target::Fig1,
            "fig2" => Target::Fig2,
            "fig3" | "tab1" => Target::Fig3,
            "fig4" => Target::Fig4,
            "fig5" => Target::Fig5,
            "sec54" => Target::Sec54,
            "sec56" => Target::Sec56,
            "fig6" | "fig7" => Target::Fig6,
            "ablation" => Target::Ablation,
            _ => return None,
        })
    }

    /// Runs the driver and renders its report exactly as `repro`
    /// prints it (one trailing newline added by the caller). Each arm
    /// opens a figure-level trace scope so span traces group a
    /// driver's cells under one `fig_*` root.
    #[must_use]
    pub fn run(self, events: usize) -> String {
        use sim_core::span::{self, ScopeKind};
        match self {
            Target::Fig1 => span::scope(ScopeKind::Figure, "fig_fig1", "fig1", String::new, || {
                crate::fig1::run(events).to_string()
            }),
            Target::Fig2 => span::scope(ScopeKind::Figure, "fig_fig2", "fig2", String::new, || {
                crate::fig2::run(events).to_string()
            }),
            Target::Fig3 => span::scope(ScopeKind::Figure, "fig_fig3", "fig3", String::new, || {
                crate::fig3::run(events).to_string()
            }),
            Target::Fig4 => span::scope(ScopeKind::Figure, "fig_fig4", "fig4", String::new, || {
                crate::fig4::run(events).to_string()
            }),
            Target::Fig5 => span::scope(ScopeKind::Figure, "fig_fig5", "fig5", String::new, || {
                crate::fig5::run(events).to_string()
            }),
            Target::Sec54 => {
                span::scope(ScopeKind::Figure, "fig_sec54", "sec54", String::new, || {
                    crate::sec54::run(events).to_string()
                })
            }
            Target::Sec56 => {
                span::scope(ScopeKind::Figure, "fig_sec56", "sec56", String::new, || {
                    crate::sec56::run(events).to_string()
                })
            }
            Target::Fig6 => span::scope(ScopeKind::Figure, "fig_fig6", "fig6", String::new, || {
                crate::fig6::run(events).to_string()
            }),
            Target::Ablation => span::scope(
                ScopeKind::Figure,
                "fig_ablation",
                "ablation",
                String::new,
                || crate::ablation::run(events).to_string(),
            ),
        }
    }

    /// Trace events the driver feeds its simulators for a given
    /// `--events` setting (cells × events). The formulas live next to
    /// each driver and are cross-checked against the live
    /// [`crate::telemetry`] counter by `tests/determinism.rs`.
    #[must_use]
    pub fn simulated_events(self, events: usize) -> u64 {
        match self {
            Target::Fig1 => crate::fig1::simulated_events(events),
            Target::Fig2 => crate::fig2::simulated_events(events),
            Target::Fig3 => crate::fig3::simulated_events(events),
            Target::Fig4 => crate::fig4::simulated_events(events),
            Target::Fig5 => crate::fig5::simulated_events(events),
            Target::Sec54 => crate::sec54::simulated_events(events),
            Target::Sec56 => crate::sec56::simulated_events(events),
            Target::Fig6 => crate::fig6::simulated_events(events),
            Target::Ablation => crate::ablation::simulated_events(events),
        }
    }
}

/// Parsed `--fault SEED:RATE` chaos plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault-decision stream.
    pub seed: u64,
    /// Probability an arrival at an injection site starts a fault
    /// burst, in `[0, 1]`.
    pub rate: f64,
    /// `--fault-persistent`: injected faults defeat every retry
    /// instead of clearing within the budget.
    pub persistent: bool,
}

impl FaultSpec {
    /// The [`sim_core::fault::FaultPlan`] this spec describes.
    #[must_use]
    pub fn plan(&self) -> sim_core::fault::FaultPlan {
        let plan = sim_core::fault::FaultPlan::new(self.seed, self.rate);
        if self.persistent {
            plan.persistent()
        } else {
            plan
        }
    }
}

/// Parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Events per workload (strictly positive).
    pub events: usize,
    /// Worker-thread cap (`None` = all cores).
    pub threads: Option<usize>,
    /// Where to write the machine-readable bench report, if anywhere.
    pub bench_json: Option<PathBuf>,
    /// Event-block size for decomposed replay (`--block-size`,
    /// strictly positive; 1 = legacy per-event replay).
    pub block_size: usize,
    /// Probe mode (`--probe epoch:N` / `--probe raw`), if any.
    pub probe: Option<ProbeMode>,
    /// Where the probe JSONL goes (defaults to `OBS_repro.jsonl` when
    /// `--probe` is given).
    pub probe_out: Option<PathBuf>,
    /// Fault-injection plan (`--fault SEED:RATE`), if any.
    pub fault: Option<FaultSpec>,
    /// Where completed cells are checkpointed (`--checkpoint PATH`),
    /// if anywhere.
    pub checkpoint: Option<PathBuf>,
    /// `--resume`: skip cells already recorded in the checkpoint.
    pub resume: bool,
    /// `--crash-after N`: simulate a kill by exiting the process after
    /// N cells have been checkpointed (test/chaos harness only).
    pub crash_after: Option<u64>,
    /// Where the span trace goes (`--trace-out PATH`), if anywhere.
    pub trace_out: Option<PathBuf>,
    /// Trace output format (`--trace-format jsonl|chrome`).
    pub trace_format: TraceFormat,
    /// `--trace-logical-clock`: record spans with a constant-zero
    /// clock so the trace is byte-identical at any thread count.
    pub trace_logical_clock: bool,
    /// `--stream`: chunked generator replay with O(chunk) memory
    /// instead of arena-resident traces; output is byte-identical.
    pub stream: bool,
    /// `--mrc`: run the miss-ratio-curve family after the targets.
    pub mrc: bool,
    /// `--mrc-sample R`: SHARDS sampling rate in `(0, 1]` (`None` =
    /// exact engine).
    pub mrc_sample: Option<f64>,
    /// Where the `mrc-repro/1` JSONL goes (defaults to
    /// `MRC_repro.jsonl` when `--mrc` is given).
    pub mrc_out: Option<PathBuf>,
    /// Targets to run, in order.
    pub targets: Vec<Target>,
}

/// Parses `repro` arguments (without the program name).
///
/// Rejects non-positive or malformed `--events` explicitly — `--events
/// 0` used to slip through and silently run every experiment over
/// empty traces.
pub fn parse_args<I>(args: I) -> Result<Options, String>
where
    I: IntoIterator<Item = String>,
{
    let mut events = crate::DEFAULT_EVENTS;
    let mut threads = None;
    let mut bench_json = None;
    let mut block_size = crate::DEFAULT_REPLAY_BLOCK;
    let mut probe = None;
    let mut probe_out: Option<PathBuf> = None;
    let mut fault: Option<FaultSpec> = None;
    let mut fault_persistent = false;
    let mut checkpoint: Option<PathBuf> = None;
    let mut resume = false;
    let mut crash_after: Option<u64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_format: Option<TraceFormat> = None;
    let mut trace_logical_clock = false;
    let mut stream = false;
    let mut mrc = false;
    let mut mrc_sample: Option<f64> = None;
    let mut mrc_out: Option<PathBuf> = None;
    let mut targets = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => {
                let value = args.next().ok_or("--events needs a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--events needs a positive integer, got `{value}`"))?;
                if n == 0 {
                    return Err(
                        "--events 0 would run every experiment over an empty trace; \
                         pass a positive event count"
                            .to_owned(),
                    );
                }
                events = n;
            }
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got `{value}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1 (1 = serial)".to_owned());
                }
                threads = Some(n);
            }
            "--bench-json" => {
                let value = args.next().ok_or("--bench-json needs a path")?;
                bench_json = Some(PathBuf::from(value));
            }
            "--block-size" => {
                let value = args.next().ok_or("--block-size needs a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--block-size needs a positive integer, got `{value}`"))?;
                if n == 0 {
                    return Err("--block-size must be at least 1 (1 = per-event replay)".to_owned());
                }
                block_size = n;
            }
            "--probe" => {
                let value = args.next().ok_or("--probe needs `epoch:N` or `raw`")?;
                probe = Some(parse_probe_mode(&value)?);
            }
            "--probe-out" => {
                let value = args.next().ok_or("--probe-out needs a path")?;
                probe_out = Some(PathBuf::from(value));
            }
            "--fault" => {
                let value = args.next().ok_or("--fault needs `SEED:RATE`")?;
                fault = Some(parse_fault_spec(&value)?);
            }
            "--fault-persistent" => fault_persistent = true,
            "--checkpoint" => {
                let value = args.next().ok_or("--checkpoint needs a path")?;
                checkpoint = Some(PathBuf::from(value));
            }
            "--resume" => resume = true,
            "--crash-after" => {
                let value = args.next().ok_or("--crash-after needs a cell count")?;
                let n: u64 = value.parse().map_err(|_| {
                    format!("--crash-after needs a positive integer, got `{value}`")
                })?;
                if n == 0 {
                    return Err("--crash-after 0 would exit before any work; \
                         pass a positive cell count"
                        .to_owned());
                }
                crash_after = Some(n);
            }
            "--trace-out" => {
                let value = args.next().ok_or("--trace-out needs a path")?;
                trace_out = Some(PathBuf::from(value));
            }
            "--trace-format" => {
                let value = args
                    .next()
                    .ok_or("--trace-format needs `jsonl` or `chrome`")?;
                trace_format = Some(TraceFormat::parse(&value)?);
            }
            "--trace-logical-clock" => trace_logical_clock = true,
            "--stream" => stream = true,
            "--mrc" => mrc = true,
            "--mrc-sample" => {
                let value = args.next().ok_or("--mrc-sample needs a rate in (0, 1]")?;
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("--mrc-sample needs a number in (0, 1], got `{value}`"))?;
                if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
                    return Err(format!("--mrc-sample must be within (0, 1], got `{value}`"));
                }
                mrc_sample = Some(rate);
            }
            "--mrc-out" => {
                let value = args.next().ok_or("--mrc-out needs a path")?;
                mrc_out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => return Err(String::new()),
            "all" => targets.extend(Target::ALL),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            other => {
                let target =
                    Target::parse(other).ok_or_else(|| format!("unknown target: {other}"))?;
                targets.push(target);
            }
        }
    }
    // A bare `repro --mrc` runs only the MRC family; mixing it with
    // explicit targets (or `all`) appends it after them.
    if targets.is_empty() && !mrc {
        targets.extend(Target::ALL);
    }
    if !mrc {
        if mrc_sample.is_some() {
            return Err("--mrc-sample without --mrc; add `--mrc`".into());
        }
        if mrc_out.is_some() {
            return Err("--mrc-out without --mrc; add `--mrc`".into());
        }
    }
    if mrc && mrc_out.is_none() {
        mrc_out = Some(PathBuf::from("MRC_repro.jsonl"));
    }
    if probe_out.is_some() && probe.is_none() {
        return Err("--probe-out without --probe; add `--probe epoch:N` or `--probe raw`".into());
    }
    if probe.is_some() && probe_out.is_none() {
        probe_out = Some(PathBuf::from("OBS_repro.jsonl"));
    }
    match fault.as_mut() {
        Some(spec) => spec.persistent = fault_persistent,
        None if fault_persistent => {
            return Err("--fault-persistent without --fault; add `--fault SEED:RATE`".into());
        }
        None => {}
    }
    if resume && checkpoint.is_none() {
        return Err("--resume without --checkpoint; add `--checkpoint PATH`".into());
    }
    if crash_after.is_some() && checkpoint.is_none() {
        return Err("--crash-after without --checkpoint; add `--checkpoint PATH`".into());
    }
    if trace_out.is_none() {
        if trace_format.is_some() {
            return Err("--trace-format without --trace-out; add `--trace-out PATH`".into());
        }
        if trace_logical_clock {
            return Err("--trace-logical-clock without --trace-out; add `--trace-out PATH`".into());
        }
    }
    Ok(Options {
        events,
        threads,
        bench_json,
        block_size,
        probe,
        probe_out,
        fault,
        checkpoint,
        resume,
        crash_after,
        trace_out,
        trace_format: trace_format.unwrap_or(TraceFormat::Jsonl),
        trace_logical_clock,
        stream,
        mrc,
        mrc_sample,
        mrc_out,
        targets,
    })
}

/// Parses a `--fault` value: `SEED:RATE` with `RATE` in `[0, 1]`.
fn parse_fault_spec(value: &str) -> Result<FaultSpec, String> {
    let (seed, rate) = value
        .split_once(':')
        .ok_or_else(|| format!("--fault needs `SEED:RATE`, got `{value}`"))?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| format!("--fault seed must be an unsigned integer, got `{seed}`"))?;
    let rate: f64 = rate
        .parse()
        .map_err(|_| format!("--fault rate must be a number in [0, 1], got `{rate}`"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault rate must be within [0, 1], got `{rate}`"));
    }
    Ok(FaultSpec {
        seed,
        rate,
        persistent: false,
    })
}

/// Parses a `--probe` value: `epoch:N` (N accesses per epoch) or
/// `raw`.
fn parse_probe_mode(value: &str) -> Result<ProbeMode, String> {
    if value == "raw" {
        return Ok(ProbeMode::Raw);
    }
    if let Some(n) = value.strip_prefix("epoch:") {
        let len: u64 = n
            .parse()
            .map_err(|_| format!("--probe epoch:N needs a positive integer, got `{n}`"))?;
        if len == 0 {
            return Err(
                "--probe epoch:0 would never close an epoch; pass a positive length".into(),
            );
        }
        return Ok(ProbeMode::Epoch(len));
    }
    Err(format!(
        "unknown probe mode `{value}` (expected `epoch:N` or `raw`)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_to_all_targets() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.events, crate::DEFAULT_EVENTS);
        assert_eq!(opts.targets, Target::ALL.to_vec());
        assert_eq!(opts.threads, None);
        assert_eq!(opts.bench_json, None);
        assert_eq!(opts.block_size, crate::DEFAULT_REPLAY_BLOCK);
        assert_eq!(opts.probe, None);
        assert_eq!(opts.probe_out, None);
    }

    #[test]
    fn parses_block_size() {
        let opts = parse(&["--block-size", "256", "fig1"]).unwrap();
        assert_eq!(opts.block_size, 256);
        // 1 selects the legacy per-event path.
        assert_eq!(parse(&["--block-size", "1"]).unwrap().block_size, 1);
    }

    #[test]
    fn rejects_bad_block_size() {
        let err = parse(&["--block-size", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse(&["--block-size", "big"]).is_err());
        assert!(parse(&["--block-size"]).is_err());
    }

    #[test]
    fn parses_stream_flag() {
        assert!(!parse(&[]).unwrap().stream);
        let opts = parse(&["--stream", "fig1"]).unwrap();
        assert!(opts.stream);
        assert_eq!(opts.targets, vec![Target::Fig1]);
        // Composes with the other replay knobs.
        let opts = parse(&["--stream", "--block-size", "256"]).unwrap();
        assert!(opts.stream);
        assert_eq!(opts.block_size, 256);
    }

    #[test]
    fn rejects_zero_events() {
        let err = parse(&["--events", "0"]).unwrap_err();
        assert!(err.contains("empty trace"), "got: {err}");
    }

    #[test]
    fn rejects_malformed_events() {
        assert!(parse(&["--events", "many"]).is_err());
        assert!(parse(&["--events", "-5"]).is_err());
        assert!(parse(&["--events"]).is_err());
    }

    #[test]
    fn rejects_zero_threads_and_unknown_flags() {
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["fig9"]).is_err());
    }

    #[test]
    fn parses_full_invocation() {
        let opts = parse(&[
            "--events",
            "5000",
            "--threads",
            "3",
            "--bench-json",
            "out/BENCH_repro.json",
            "fig3",
            "fig7",
        ])
        .unwrap();
        assert_eq!(opts.events, 5000);
        assert_eq!(opts.threads, Some(3));
        assert_eq!(
            opts.bench_json.as_deref(),
            Some(std::path::Path::new("out/BENCH_repro.json"))
        );
        assert_eq!(opts.targets, vec![Target::Fig3, Target::Fig6]);
    }

    #[test]
    fn parses_probe_flags() {
        let opts = parse(&["--probe", "epoch:500", "fig1"]).unwrap();
        assert_eq!(opts.probe, Some(ProbeMode::Epoch(500)));
        // --probe-out defaults when --probe is given.
        assert_eq!(
            opts.probe_out.as_deref(),
            Some(std::path::Path::new("OBS_repro.jsonl"))
        );

        let opts = parse(&["--probe", "raw", "--probe-out", "out.jsonl"]).unwrap();
        assert_eq!(opts.probe, Some(ProbeMode::Raw));
        assert_eq!(
            opts.probe_out.as_deref(),
            Some(std::path::Path::new("out.jsonl"))
        );
    }

    #[test]
    fn rejects_bad_probe_flags() {
        assert!(parse(&["--probe", "epoch:0"]).is_err());
        assert!(parse(&["--probe", "epoch:many"]).is_err());
        assert!(parse(&["--probe", "sometimes"]).is_err());
        assert!(parse(&["--probe"]).is_err());
        let err = parse(&["--probe-out", "x.jsonl"]).unwrap_err();
        assert!(err.contains("--probe-out without --probe"), "{err}");
    }

    #[test]
    fn parses_fault_and_checkpoint_flags() {
        let opts = parse(&[
            "--fault",
            "42:0.25",
            "--fault-persistent",
            "--checkpoint",
            "ckpt.jsonl",
            "--resume",
            "--crash-after",
            "3",
            "fig1",
        ])
        .unwrap();
        assert_eq!(
            opts.fault,
            Some(FaultSpec {
                seed: 42,
                rate: 0.25,
                persistent: true,
            })
        );
        assert!(opts.fault.unwrap().plan().persist);
        assert_eq!(
            opts.checkpoint.as_deref(),
            Some(std::path::Path::new("ckpt.jsonl"))
        );
        assert!(opts.resume);
        assert_eq!(opts.crash_after, Some(3));

        // Defaults stay off.
        let opts = parse(&["fig1"]).unwrap();
        assert_eq!(opts.fault, None);
        assert_eq!(opts.checkpoint, None);
        assert!(!opts.resume);
        assert_eq!(opts.crash_after, None);
    }

    #[test]
    fn rejects_bad_fault_and_checkpoint_flags() {
        assert!(parse(&["--fault", "42"]).is_err());
        assert!(parse(&["--fault", "x:0.5"]).is_err());
        assert!(parse(&["--fault", "42:high"]).is_err());
        assert!(parse(&["--fault", "42:1.5"]).is_err());
        assert!(parse(&["--fault", "42:-0.1"]).is_err());
        let err = parse(&["--fault-persistent"]).unwrap_err();
        assert!(err.contains("without --fault"), "{err}");
        let err = parse(&["--resume"]).unwrap_err();
        assert!(err.contains("without --checkpoint"), "{err}");
        let err = parse(&["--crash-after", "2"]).unwrap_err();
        assert!(err.contains("without --checkpoint"), "{err}");
        assert!(parse(&["--checkpoint", "c.jsonl", "--crash-after", "0"]).is_err());
    }

    #[test]
    fn parses_trace_flags() {
        let opts = parse(&["--trace-out", "TRACE.jsonl", "fig1"]).unwrap();
        assert_eq!(
            opts.trace_out.as_deref(),
            Some(std::path::Path::new("TRACE.jsonl"))
        );
        assert_eq!(opts.trace_format, TraceFormat::Jsonl);
        assert!(!opts.trace_logical_clock);

        let opts = parse(&[
            "--trace-out",
            "t.json",
            "--trace-format",
            "chrome",
            "--trace-logical-clock",
        ])
        .unwrap();
        assert_eq!(opts.trace_format, TraceFormat::Chrome);
        assert!(opts.trace_logical_clock);

        // Defaults stay off.
        let opts = parse(&["fig1"]).unwrap();
        assert_eq!(opts.trace_out, None);
        assert_eq!(opts.trace_format, TraceFormat::Jsonl);
        assert!(!opts.trace_logical_clock);
    }

    #[test]
    fn rejects_bad_trace_flags() {
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--trace-out", "t.jsonl", "--trace-format", "xml"]).is_err());
        let err = parse(&["--trace-format", "jsonl"]).unwrap_err();
        assert!(err.contains("without --trace-out"), "{err}");
        let err = parse(&["--trace-logical-clock"]).unwrap_err();
        assert!(err.contains("without --trace-out"), "{err}");
    }

    #[test]
    fn parses_mrc_flags() {
        // Bare --mrc runs only the MRC family, with a default output
        // path and the exact engine.
        let opts = parse(&["--mrc"]).unwrap();
        assert!(opts.mrc);
        assert_eq!(opts.mrc_sample, None);
        assert_eq!(
            opts.mrc_out.as_deref(),
            Some(std::path::Path::new("MRC_repro.jsonl"))
        );
        assert!(opts.targets.is_empty());

        // Mixed with targets it rides along after them.
        let opts = parse(&["--mrc", "--mrc-sample", "0.01", "fig1"]).unwrap();
        assert_eq!(opts.targets, vec![Target::Fig1]);
        assert_eq!(opts.mrc_sample, Some(0.01));

        let opts = parse(&["--mrc", "--mrc-out", "out/curves.jsonl"]).unwrap();
        assert_eq!(
            opts.mrc_out.as_deref(),
            Some(std::path::Path::new("out/curves.jsonl"))
        );

        // Rate 1 is the exact engine spelled as a sample rate.
        assert_eq!(
            parse(&["--mrc", "--mrc-sample", "1.0"]).unwrap().mrc_sample,
            Some(1.0)
        );

        // Defaults stay off (and targets default to ALL).
        let opts = parse(&["fig1"]).unwrap();
        assert!(!opts.mrc);
        assert_eq!(opts.mrc_sample, None);
        assert_eq!(opts.mrc_out, None);
    }

    #[test]
    fn rejects_bad_mrc_flags() {
        assert!(parse(&["--mrc", "--mrc-sample", "0"]).is_err());
        assert!(parse(&["--mrc", "--mrc-sample", "-0.5"]).is_err());
        assert!(parse(&["--mrc", "--mrc-sample", "1.5"]).is_err());
        assert!(parse(&["--mrc", "--mrc-sample", "NaN"]).is_err());
        assert!(parse(&["--mrc", "--mrc-sample", "lots"]).is_err());
        assert!(parse(&["--mrc", "--mrc-sample"]).is_err());
        let err = parse(&["--mrc-sample", "0.1"]).unwrap_err();
        assert!(err.contains("without --mrc"), "{err}");
        let err = parse(&["--mrc-out", "m.jsonl"]).unwrap_err();
        assert!(err.contains("without --mrc"), "{err}");
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(Target::parse("tab1"), Some(Target::Fig3));
        assert_eq!(Target::parse("fig7"), Some(Target::Fig6));
        for t in Target::ALL {
            assert_eq!(
                Target::parse(t.name()),
                Some(t),
                "{} must round-trip",
                t.name()
            );
        }
    }

    #[test]
    fn event_formulas_scale_linearly() {
        for t in Target::ALL {
            let one = t.simulated_events(1_000);
            let two = t.simulated_events(2_000);
            assert_eq!(two, one * 2, "{}", t.name());
            assert!(one > 0, "{}", t.name());
        }
    }
}
