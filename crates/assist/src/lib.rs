//! The cache-assist buffer shared by every architecture in the paper.
//!
//! Paper §4: "We will model a variety of flavors of a cache assist
//! buffer, which will serve at different times as a victim buffer,
//! prefetch buffer, cache bypass buffer, or the adaptive miss buffer.
//! In each case the structure is very similar. In most cases it will
//! have eight fully-associative entries and have two read and two
//! write ports. It can produce a word to the CPU in one cycle. A full
//! cache line read or write requires a port for two cycles. A line
//! swap with the data cache requires two ports for two cycles."
//!
//! [`AssistBuffer`] is the storage (fully-associative, LRU, generic
//! per-entry metadata); [`BufferPorts`] is the timing model.
//!
//! # Examples
//!
//! ```
//! use assist_buffer::AssistBuffer;
//! use sim_core::LineAddr;
//!
//! let mut buf: AssistBuffer<&str> = AssistBuffer::new(2);
//! buf.insert(LineAddr::new(1), "victim");
//! buf.insert(LineAddr::new(2), "prefetch");
//! let evicted = buf.insert(LineAddr::new(3), "bypass").unwrap();
//! assert_eq!(evicted, (LineAddr::new(1), "victim")); // LRU out
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod ports;

pub use buffer::{AssistBuffer, BufferStats};
pub use ports::BufferPorts;
