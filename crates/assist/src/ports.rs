//! The assist buffer's port timing model.

use sim_core::Cycle;

/// Two read and two write ports, per the paper's buffer description.
///
/// * a word to the CPU takes one read port for one cycle;
/// * a full line read or write takes one port for two cycles;
/// * a swap with the data cache takes one read **and** one write port
///   for two cycles each, starting together.
///
/// # Examples
///
/// ```
/// use assist_buffer::BufferPorts;
/// use sim_core::Cycle;
///
/// let mut ports = BufferPorts::new();
/// let g1 = ports.swap(Cycle::ZERO);      // read0+write0 busy to cycle 2
/// let g2 = ports.swap(Cycle::ZERO);      // read1+write1 busy to cycle 2
/// let g3 = ports.word_read(Cycle::ZERO); // all read ports busy
/// assert_eq!((g1, g2, g3), (Cycle::ZERO, Cycle::ZERO, Cycle::new(2)));
/// ```
#[derive(Debug, Clone)]
pub struct BufferPorts {
    read_free: [Cycle; 2],
    write_free: [Cycle; 2],
}

const WORD_CYCLES: u64 = 1;
const LINE_CYCLES: u64 = 2;

impl BufferPorts {
    /// Creates the 2R/2W port set, all free.
    #[must_use]
    pub fn new() -> Self {
        BufferPorts {
            read_free: [Cycle::ZERO; 2],
            write_free: [Cycle::ZERO; 2],
        }
    }

    /// Delivers a word to the CPU: one read port, one cycle. Returns
    /// the grant time.
    pub fn word_read(&mut self, now: Cycle) -> Cycle {
        Self::acquire_one(&mut self.read_free, now, WORD_CYCLES)
    }

    /// Reads a full line out of the buffer (promotion into the
    /// cache): one read port, two cycles.
    pub fn line_read(&mut self, now: Cycle) -> Cycle {
        Self::acquire_one(&mut self.read_free, now, LINE_CYCLES)
    }

    /// Writes a full line into the buffer (victim fill, prefetch
    /// arrival, bypass): one write port, two cycles.
    pub fn line_write(&mut self, now: Cycle) -> Cycle {
        Self::acquire_one(&mut self.write_free, now, LINE_CYCLES)
    }

    /// Swaps a line with the data cache: one read and one write port,
    /// both for two cycles, starting together. Returns the common
    /// grant time.
    pub fn swap(&mut self, now: Cycle) -> Cycle {
        let r = Self::earliest(&self.read_free);
        let w = Self::earliest(&self.write_free);
        let grant = self.read_free[r].max(self.write_free[w]).max(now);
        self.read_free[r] = grant + LINE_CYCLES;
        self.write_free[w] = grant + LINE_CYCLES;
        grant
    }

    /// The earliest cycle at which any read port is free.
    #[must_use]
    pub fn earliest_read_free(&self) -> Cycle {
        self.read_free[Self::earliest(&self.read_free)]
    }

    fn acquire_one(ports: &mut [Cycle; 2], now: Cycle, busy: u64) -> Cycle {
        let idx = Self::earliest(ports);
        let grant = ports[idx].max(now);
        ports[idx] = grant + busy;
        grant
    }

    fn earliest(ports: &[Cycle; 2]) -> usize {
        if ports[0] <= ports[1] {
            0
        } else {
            1
        }
    }
}

impl Default for BufferPorts {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_word_reads_per_cycle() {
        let mut p = BufferPorts::new();
        assert_eq!(p.word_read(Cycle::ZERO), Cycle::ZERO);
        assert_eq!(p.word_read(Cycle::ZERO), Cycle::ZERO);
        assert_eq!(p.word_read(Cycle::ZERO), Cycle::new(1));
    }

    #[test]
    fn line_ops_occupy_two_cycles() {
        let mut p = BufferPorts::new();
        assert_eq!(p.line_write(Cycle::ZERO), Cycle::ZERO);
        assert_eq!(p.line_write(Cycle::ZERO), Cycle::ZERO);
        assert_eq!(p.line_write(Cycle::ZERO), Cycle::new(2));
    }

    #[test]
    fn reads_and_writes_are_independent_pools() {
        let mut p = BufferPorts::new();
        p.line_read(Cycle::ZERO);
        p.line_read(Cycle::ZERO);
        // Read ports exhausted, write ports still free.
        assert_eq!(p.line_write(Cycle::ZERO), Cycle::ZERO);
        assert_eq!(p.word_read(Cycle::ZERO), Cycle::new(2));
    }

    #[test]
    fn swap_waits_for_both_pools() {
        let mut p = BufferPorts::new();
        p.line_read(Cycle::ZERO); // read0 busy to 2
        p.line_read(Cycle::ZERO); // read1 busy to 2
                                  // Swap needs a read port: granted at 2 even though writes are
                                  // free.
        assert_eq!(p.swap(Cycle::ZERO), Cycle::new(2));
    }

    #[test]
    fn grant_respects_now() {
        let mut p = BufferPorts::new();
        assert_eq!(p.swap(Cycle::new(50)), Cycle::new(50));
        // The other read port is untouched...
        assert_eq!(p.earliest_read_free(), Cycle::ZERO);
        // ...and once it is taken too, the swapped port's 52 is next.
        p.line_read(Cycle::new(49)); // busy 49..51
        assert_eq!(p.earliest_read_free(), Cycle::new(51));
    }
}
