//! Fully-associative LRU buffer storage.

use sim_core::LineAddr;

/// Probe/fill statistics for an assist buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferStats {
    /// Probes that found the line.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// Lines inserted.
    pub fills: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
}

impl BufferStats {
    /// Hit fraction of all probes, or 0.0 before any probe.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A small fully-associative buffer with LRU replacement and per-entry
/// metadata `M` (the entry's role, arrival time, use bit, …).
///
/// The entry order doubles as the recency list: index 0 is LRU, the
/// back is MRU. At the paper's sizes (8–16 entries) linear search is
/// exactly what the hardware's parallel tag match costs — nothing
/// cleverer is warranted.
#[derive(Debug, Clone)]
pub struct AssistBuffer<M> {
    capacity: usize,
    entries: Vec<(LineAddr, M)>,
    stats: BufferStats,
}

impl<M> AssistBuffer<M> {
    /// Creates an empty buffer holding up to `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer needs at least one entry");
        AssistBuffer {
            capacity,
            entries: Vec::with_capacity(capacity),
            stats: BufferStats::default(),
        }
    }

    /// The buffer's capacity in lines.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no lines are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probe/fill statistics.
    #[must_use]
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Looks up a line, refreshing its recency and recording hit/miss.
    /// Returns the entry's metadata mutably on a hit.
    pub fn probe(&mut self, line: LineAddr) -> Option<&mut M> {
        match self.entries.iter().position(|(l, _)| *l == line) {
            Some(pos) => {
                self.stats.hits += 1;
                let entry = self.entries.remove(pos);
                self.entries.push(entry);
                Some(&mut self.entries.last_mut().expect("just pushed").1)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up and **removes** a line (victim-cache swap / prefetch
    /// promotion), recording hit/miss.
    pub fn probe_remove(&mut self, line: LineAddr) -> Option<M> {
        match self.entries.iter().position(|(l, _)| *l == line) {
            Some(pos) => {
                self.stats.hits += 1;
                Some(self.entries.remove(pos).1)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up without touching recency or statistics.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        self.entries
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, m)| m)
    }

    /// `true` if the line is resident (no side effects).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line as MRU, displacing the LRU entry if full.
    /// Inserting a resident line replaces its metadata and refreshes
    /// it (no eviction). Returns the displaced entry.
    pub fn insert(&mut self, line: LineAddr, meta: M) -> Option<(LineAddr, M)> {
        self.stats.fills += 1;
        if let Some(pos) = self.entries.iter().position(|(l, _)| *l == line) {
            self.entries.remove(pos);
            self.entries.push((line, meta));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.stats.evictions += 1;
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push((line, meta));
        evicted
    }

    /// Removes a line without counting a probe, returning its
    /// metadata.
    pub fn remove(&mut self, line: LineAddr) -> Option<M> {
        let pos = self.entries.iter().position(|(l, _)| *l == line)?;
        Some(self.entries.remove(pos).1)
    }

    /// Iterates entries from LRU to MRU.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> + '_ {
        self.entries.iter().map(|(l, m)| (*l, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn probe_hit_refreshes_recency() {
        let mut b = AssistBuffer::new(2);
        b.insert(line(1), ());
        b.insert(line(2), ());
        b.probe(line(1)); // 2 is now LRU
        let ev = b.insert(line(3), ()).unwrap();
        assert_eq!(ev.0, line(2));
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut b = AssistBuffer::new(2);
        b.insert(line(1), ());
        b.insert(line(2), ());
        let _ = b.peek(line(1));
        let ev = b.insert(line(3), ()).unwrap();
        assert_eq!(ev.0, line(1));
    }

    #[test]
    fn probe_remove_consumes() {
        let mut b = AssistBuffer::new(4);
        b.insert(line(7), 42);
        assert_eq!(b.probe_remove(line(7)), Some(42));
        assert!(!b.contains(line(7)));
        assert_eq!(b.probe_remove(line(7)), None);
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut b = AssistBuffer::new(2);
        b.insert(line(1), "a");
        b.insert(line(2), "b");
        assert!(b.insert(line(1), "a2").is_none()); // no eviction
        assert_eq!(b.len(), 2);
        assert_eq!(b.peek(line(1)), Some(&"a2"));
        // And line 1 is now MRU.
        let ev = b.insert(line(3), "c").unwrap();
        assert_eq!(ev.0, line(2));
    }

    #[test]
    fn capacity_is_respected() {
        let mut b = AssistBuffer::new(8);
        for n in 0..100 {
            b.insert(line(n), n);
        }
        assert_eq!(b.len(), 8);
        assert_eq!(b.stats().evictions, 92);
        // The survivors are the 8 most recent.
        for n in 92..100 {
            assert!(b.contains(line(n)));
        }
    }

    #[test]
    fn iter_goes_lru_to_mru() {
        let mut b = AssistBuffer::new(3);
        for n in [5, 6, 7] {
            b.insert(line(n), ());
        }
        b.probe(line(5));
        let order: Vec<u64> = b.iter().map(|(l, _)| l.raw()).collect();
        assert_eq!(order, vec![6, 7, 5]);
    }

    #[test]
    fn hit_rate_reflects_probes() {
        let mut b = AssistBuffer::new(2);
        b.insert(line(1), ());
        b.probe(line(1));
        b.probe(line(9));
        assert!((b.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _: AssistBuffer<()> = AssistBuffer::new(0);
    }
}
