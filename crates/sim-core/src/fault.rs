//! Seeded, deterministic fault injection and the retry/backoff
//! machinery that recovers from it.
//!
//! Long `repro` sweeps die from transient trouble — an I/O hiccup
//! while a JSONL file flushes, an allocation-pressure panic in one
//! worker — and without recovery a single incident throws away every
//! completed cell. This module makes that failure mode *testable*: a
//! [`FaultPlan`] names injection **sites** (the places the workspace
//! has retry machinery) and fires at reproducible points, so the chaos
//! suite can assert that recovery is transparent (output byte-identical
//! to a fault-free run) rather than hoping.
//!
//! # Sites
//!
//! | site | where it fires | recovery |
//! |------|----------------|----------|
//! | [`FaultSite::ArenaMaterialize`] | trace/decomposed arena fill | [`gate`] retry inside `get_or_*` |
//! | [`FaultSite::ProbeFlush`]       | per-cell probe record flush | [`gate`] retry in `experiments::probe::cell` |
//! | [`FaultSite::JsonlWrite`]       | bench/probe/checkpoint file writes | [`gate`] + I/O retry in `experiments::ioutil` |
//! | [`FaultSite::WorkerBody`]       | scheduler worker, before each cell | panic-isolation + re-run in [`crate::parallel`] |
//!
//! # Determinism and recoverability
//!
//! Every fault decision is a pure function of `(plan seed, site,
//! arrival index)` — no wall clock, no ambient entropy. A **transient**
//! plan draws a bounded *burst length* per faulted operation (at most
//! [`MAX_RECOVERABLE_BURST`] consecutive failures, strictly below the
//! retry budget), so recovery is guaranteed by construction: the chaos
//! differential test can inject at any rate and still demand
//! byte-identical output. A **persistent** plan ([`FaultPlan::persistent`])
//! makes a faulted operation fail on every retry — the way to exercise
//! retry exhaustion, degraded cells, and checkpoint-resume of failures.
//!
//! Backoff is deterministic too: the delay for attempt `k` is
//! `base << (k - 1)` microseconds, capped (see [`backoff_delay`]).
//! Delays affect wall time only, never output.
//!
//! # Examples
//!
//! ```
//! use sim_core::fault::{self, FaultPlan, FaultSite};
//!
//! fault::install(FaultPlan::new(7, 1.0)); // every arrival faults
//! let retries = fault::gate(FaultSite::JsonlWrite).expect("transient faults recover");
//! assert!(retries >= 1);
//! fault::clear();
//! assert_eq!(fault::gate(FaultSite::JsonlWrite), Ok(0)); // no plan, no faults
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, PoisonError};
use std::time::Duration;

use crate::rng::SplitMix64;

/// One named place the workspace can inject (and recover from) a
/// fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Trace (or decomposed-trace) arena materialization.
    ArenaMaterialize,
    /// Flushing one experiment cell's folded probe record.
    ProbeFlush,
    /// Writing a JSONL/JSON artifact (bench report, probe output,
    /// checkpoint lines).
    JsonlWrite,
    /// The parallel scheduler's worker body, immediately before a cell
    /// runs (fires as a panic; the scheduler isolates and retries it).
    WorkerBody,
}

impl FaultSite {
    /// Every site, in stable order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::ArenaMaterialize,
        FaultSite::ProbeFlush,
        FaultSite::JsonlWrite,
        FaultSite::WorkerBody,
    ];

    /// Stable name (used in diagnostics and CLI site lists).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::ArenaMaterialize => "arena",
            FaultSite::ProbeFlush => "probe-flush",
            FaultSite::JsonlWrite => "jsonl-write",
            FaultSite::WorkerBody => "worker",
        }
    }

    /// Parses a site name as printed by [`FaultSite::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }

    const fn index(self) -> usize {
        match self {
            FaultSite::ArenaMaterialize => 0,
            FaultSite::ProbeFlush => 1,
            FaultSite::JsonlWrite => 2,
            FaultSite::WorkerBody => 3,
        }
    }

    /// This site's bit in a [`FaultPlan`] site mask (bit `i` for the
    /// `i`-th entry of [`FaultSite::ALL`]) — lets chaos harnesses draw
    /// random site subsets from a bitmask.
    #[must_use]
    pub const fn bit(self) -> u8 {
        1 << self.index()
    }
}

/// The longest failure burst a *transient* fault produces. Strictly
/// below every legal retry budget, so transient plans are recoverable
/// by construction.
pub const MAX_RECOVERABLE_BURST: u32 = 3;

/// Bounded-retry parameters shared by every recovery site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before an operation is given up (≥ 2 so at least one
    /// retry happens; must exceed [`MAX_RECOVERABLE_BURST`]).
    pub max_attempts: u32,
    /// Backoff before retry 1, microseconds.
    pub base_delay_micros: u64,
    /// Backoff ceiling, microseconds.
    pub max_delay_micros: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_micros: 50,
            max_delay_micros: 2_000,
        }
    }
}

/// The deterministic backoff before retry `attempt` (1-based):
/// `base << (attempt - 1)`, capped at the policy ceiling. Pure, so
/// tests can assert the schedule without sleeping.
#[must_use]
pub fn backoff_delay(policy: &RetryPolicy, attempt: u32) -> Duration {
    let shift = attempt.saturating_sub(1).min(20);
    let micros = policy
        .base_delay_micros
        .saturating_shl(shift)
        .min(policy.max_delay_micros);
    Duration::from_micros(micros)
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// A seeded description of which arrivals at which sites fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability an arrival starts a fault burst, in `[0, 1]`.
    pub rate: f64,
    /// `false`: bursts are bounded (recoverable). `true`: a faulted
    /// operation fails on every retry (exhausts the budget).
    pub persist: bool,
    /// Retry/backoff parameters recovery sites use while this plan is
    /// installed.
    pub retry: RetryPolicy,
    sites: u8,
}

impl FaultPlan {
    /// A transient plan covering every site.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            persist: false,
            retry: RetryPolicy::default(),
            sites: FaultSite::ALL.iter().fold(0, |m, s| m | s.bit()),
        }
    }

    /// Restricts the plan to the given sites.
    #[must_use]
    pub fn with_sites(mut self, sites: &[FaultSite]) -> Self {
        self.sites = sites.iter().fold(0, |m, s| m | s.bit());
        self
    }

    /// Makes every injected fault permanent: retries keep failing until
    /// the budget is exhausted and the operation degrades.
    #[must_use]
    pub fn persistent(mut self) -> Self {
        self.persist = true;
        self
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Whether the plan injects at `site`.
    #[must_use]
    pub fn covers(&self, site: FaultSite) -> bool {
        self.sites & site.bit() != 0
    }

    /// The burst length for arrival `arrival` at `site`: `0` (no
    /// fault), `1..=MAX_RECOVERABLE_BURST` consecutive failures
    /// (transient), or `u32::MAX` (persistent plan). Pure — the same
    /// `(seed, site, arrival)` always decides the same way.
    #[must_use]
    pub fn burst(&self, site: FaultSite, arrival: u64) -> u32 {
        if self.rate <= 0.0 || !self.covers(site) {
            return 0;
        }
        let mix = self
            .seed
            .wrapping_add((site.index() as u64 + 1).wrapping_mul(0xd6e8_feb8_6659_fd93))
            .wrapping_add(arrival.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let mut rng = SplitMix64::new(mix);
        if rng.next_f64() >= self.rate {
            return 0;
        }
        if self.persist {
            return u32::MAX;
        }
        1 + (rng.next_u64() % u64::from(MAX_RECOVERABLE_BURST)) as u32
    }
}

/// The error a recovery site reports when its retry budget is
/// exhausted (only persistent plans — or real, non-injected failures —
/// get here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that kept failing.
    pub site: FaultSite,
    /// Attempts made before giving up.
    pub attempts: u32,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault persisted through {} attempts",
            self.site.name(),
            self.attempts
        )
    }
}

impl std::error::Error for FaultError {}

/// The panic payload of an injected worker-body fault, recognized by
/// the scheduler's panic isolation (and silenced by
/// [`silence_injected_panics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPanic {
    /// The site that fired (always [`FaultSite::WorkerBody`] today).
    pub site: FaultSite,
    /// The attempt (1-based) the fault interrupted.
    pub attempt: u32,
}

impl fmt::Display for FaultPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault (attempt {})",
            self.site.name(),
            self.attempt
        )
    }
}

/// An installed plan plus its live counters.
#[derive(Debug)]
struct Installed {
    plan: FaultPlan,
    arrivals: [AtomicU64; FaultSite::ALL.len()],
    injected: AtomicU64,
    exhausted: AtomicU64,
}

impl Installed {
    fn next_arrival(&self, site: FaultSite) -> u64 {
        self.arrivals[site.index()].fetch_add(1, Ordering::Relaxed)
    }
}

/// Fast disarmed check: zero when no plan is installed, so every gate
/// costs one relaxed load on plain runs.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Arc<Installed>>> = Mutex::new(None);

fn current() -> Option<Arc<Installed>> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    STATE.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Installs `plan` process-wide, resetting arrival and injection
/// counters. Intended for harness startup (`repro --fault`) and chaos
/// tests.
pub fn install(plan: FaultPlan) {
    let installed = Arc::new(Installed {
        plan,
        arrivals: Default::default(),
        injected: AtomicU64::new(0),
        exhausted: AtomicU64::new(0),
    });
    *STATE.lock().unwrap_or_else(PoisonError::into_inner) = Some(installed);
    ARMED.store(true, Ordering::Release);
}

/// Removes any installed plan; every site behaves normally again.
pub fn clear() {
    ARMED.store(false, Ordering::Release);
    *STATE.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a fault plan is installed.
#[must_use]
pub fn active() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Counters describing what an installed plan has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Individual fault firings (each failed attempt counts).
    pub injected: u64,
    /// Operations whose retry budget was exhausted.
    pub exhausted: u64,
}

/// The installed plan's counters (zeroes when no plan is installed).
#[must_use]
pub fn stats() -> FaultStats {
    match current() {
        Some(st) => FaultStats {
            injected: st.injected.load(Ordering::Relaxed),
            exhausted: st.exhausted.load(Ordering::Relaxed),
        },
        None => FaultStats::default(),
    }
}

/// The retry budget recovery loops should use: the installed plan's,
/// or `1` (no retries) when no plan is installed — a real panic on a
/// plain run fails fast exactly as before.
#[must_use]
pub fn retry_attempts() -> u32 {
    current().map_or(1, |st| st.plan.retry.max_attempts.max(2))
}

/// The I/O retry budget: the installed plan's, or the default policy's
/// when none is installed (real transient I/O errors deserve retries
/// even without chaos testing).
#[must_use]
pub fn io_retry_attempts() -> u32 {
    current().map_or_else(
        || RetryPolicy::default().max_attempts,
        |st| st.plan.retry.max_attempts.max(2),
    )
}

/// Sleeps the deterministic backoff before retry `attempt` (1-based),
/// under the installed plan's policy (or the default).
pub fn backoff(attempt: u32) {
    let policy = current().map_or_else(RetryPolicy::default, |st| st.plan.retry);
    let delay = backoff_delay(&policy, attempt);
    if !delay.is_zero() {
        let _span = crate::span::enter("fault_backoff");
        std::thread::sleep(delay);
    }
}

/// Passes through a recoverable injection site: draws one arrival,
/// retries (with backoff) through the fault burst the plan assigns it,
/// and returns how many retries that took. `Ok(0)` is the common case —
/// no plan, uncovered site, or no fault at this arrival.
///
/// # Errors
///
/// [`FaultError`] when the burst outlasts the retry budget (persistent
/// plans only; transient bursts are capped below every legal budget).
pub fn gate(site: FaultSite) -> Result<u32, FaultError> {
    let Some(st) = current() else { return Ok(0) };
    if !st.plan.covers(site) {
        return Ok(0);
    }
    let arrival = st.next_arrival(site);
    let burst = st.plan.burst(site, arrival);
    if burst == 0 {
        return Ok(0);
    }
    let budget = st.plan.retry.max_attempts.max(2);
    let mut attempt = 0u32;
    while attempt < burst {
        attempt += 1;
        st.injected.fetch_add(1, Ordering::Relaxed);
        if attempt >= budget {
            st.exhausted.fetch_add(1, Ordering::Relaxed);
            return Err(FaultError {
                site,
                attempts: attempt,
            });
        }
        let _span = crate::span::enter("fault_backoff");
        std::thread::sleep(backoff_delay(&st.plan.retry, attempt));
    }
    Ok(attempt)
}

/// The scheduler's worker-body trip: panics with a [`FaultPanic`]
/// payload when the plan faults this cell's `attempt` (1-based). `pin`
/// holds the cell's arrival index across retries so one cell draws one
/// burst; pass the same `&mut None`-initialized slot on every attempt.
///
/// # Panics
///
/// Panics (by design) with [`FaultPanic`] when the fault fires; the
/// scheduler's per-cell `catch_unwind` isolates it.
pub fn worker_trip(pin: &mut Option<u64>, attempt: u32) {
    let Some(st) = current() else { return };
    if !st.plan.covers(FaultSite::WorkerBody) {
        return;
    }
    let arrival = *pin.get_or_insert_with(|| st.next_arrival(FaultSite::WorkerBody));
    let burst = st.plan.burst(FaultSite::WorkerBody, arrival);
    if attempt <= burst {
        st.injected.fetch_add(1, Ordering::Relaxed);
        if attempt >= st.plan.retry.max_attempts.max(2) {
            st.exhausted.fetch_add(1, Ordering::Relaxed);
        }
        std::panic::panic_any(FaultPanic {
            site: FaultSite::WorkerBody,
            attempt,
        });
    }
}

/// Installs a panic hook that suppresses the default "thread panicked"
/// report for *injected* panics ([`FaultPanic`] / [`FaultError`]
/// payloads) while delegating everything else to the previous hook.
/// Chaos runs inject thousands of recoverable panics; without this the
/// stderr noise buries real diagnostics. Idempotent.
pub fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<FaultPanic>() || payload.is::<FaultError>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-plan tests serialize on this (the plan is process-wide
    /// and the test harness runs tests concurrently).
    static PLAN_LOCK: Mutex<()> = Mutex::new(());

    fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
        let _guard = PLAN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(plan);
        let out = f();
        clear();
        out
    }

    #[test]
    fn burst_is_deterministic_and_bounded() {
        let plan = FaultPlan::new(42, 0.5);
        for site in FaultSite::ALL {
            for arrival in 0..2_000 {
                let a = plan.burst(site, arrival);
                let b = plan.burst(site, arrival);
                assert_eq!(a, b, "same (seed, site, arrival) must decide the same");
                assert!(a <= MAX_RECOVERABLE_BURST, "transient bursts are bounded");
            }
        }
    }

    #[test]
    fn burst_rate_extremes() {
        let never = FaultPlan::new(1, 0.0);
        let always = FaultPlan::new(1, 1.0);
        for arrival in 0..200 {
            assert_eq!(never.burst(FaultSite::JsonlWrite, arrival), 0);
            assert!(always.burst(FaultSite::JsonlWrite, arrival) >= 1);
        }
    }

    #[test]
    fn persistent_bursts_are_unbounded() {
        let plan = FaultPlan::new(3, 1.0).persistent();
        assert_eq!(plan.burst(FaultSite::ProbeFlush, 0), u32::MAX);
    }

    #[test]
    fn site_filter_and_parse_round_trip() {
        let plan = FaultPlan::new(9, 1.0).with_sites(&[FaultSite::WorkerBody]);
        assert!(plan.covers(FaultSite::WorkerBody));
        assert!(!plan.covers(FaultSite::JsonlWrite));
        assert_eq!(plan.burst(FaultSite::JsonlWrite, 0), 0);
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(FaultSite::parse("quantum"), None);
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay_micros: 100,
            max_delay_micros: 500,
        };
        assert_eq!(backoff_delay(&policy, 1), Duration::from_micros(100));
        assert_eq!(backoff_delay(&policy, 2), Duration::from_micros(200));
        assert_eq!(backoff_delay(&policy, 3), Duration::from_micros(400));
        assert_eq!(backoff_delay(&policy, 4), Duration::from_micros(500));
        assert_eq!(backoff_delay(&policy, 40), Duration::from_micros(500));
    }

    #[test]
    fn gate_without_plan_is_free() {
        let _guard = PLAN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert!(!active());
        assert_eq!(gate(FaultSite::ArenaMaterialize), Ok(0));
        assert_eq!(stats(), FaultStats::default());
        assert_eq!(retry_attempts(), 1);
    }

    #[test]
    fn transient_gate_always_recovers() {
        let fast = RetryPolicy {
            max_attempts: 5,
            base_delay_micros: 0,
            max_delay_micros: 0,
        };
        with_plan(FaultPlan::new(11, 1.0).with_retry(fast), || {
            for _ in 0..200 {
                let retries = gate(FaultSite::JsonlWrite).expect("transient faults recover");
                assert!((1..=MAX_RECOVERABLE_BURST).contains(&retries));
            }
            let s = stats();
            assert!(s.injected >= 200);
            assert_eq!(s.exhausted, 0);
        });
    }

    #[test]
    fn persistent_gate_exhausts_the_budget() {
        let fast = RetryPolicy {
            max_attempts: 4,
            base_delay_micros: 0,
            max_delay_micros: 0,
        };
        with_plan(
            FaultPlan::new(11, 1.0).persistent().with_retry(fast),
            || {
                let err = gate(FaultSite::ProbeFlush).expect_err("persistent faults exhaust");
                assert_eq!(err.site, FaultSite::ProbeFlush);
                assert_eq!(err.attempts, 4);
                assert_eq!(stats().exhausted, 1);
            },
        );
    }

    #[test]
    fn worker_trip_panics_through_its_burst_then_clears() {
        let fast = RetryPolicy {
            max_attempts: 5,
            base_delay_micros: 0,
            max_delay_micros: 0,
        };
        with_plan(FaultPlan::new(2, 1.0).with_retry(fast), || {
            let mut pin = None;
            let mut attempt = 0;
            loop {
                attempt += 1;
                let trip = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_trip(&mut pin, attempt);
                }));
                match trip {
                    Ok(()) => break,
                    Err(payload) => {
                        let fp = payload.downcast::<FaultPanic>().expect("injected payload");
                        assert_eq!(fp.site, FaultSite::WorkerBody);
                        assert_eq!(fp.attempt, attempt);
                    }
                }
                assert!(
                    attempt <= MAX_RECOVERABLE_BURST,
                    "burst must clear in budget"
                );
            }
            assert!(attempt >= 2, "rate 1.0 must have injected at least once");
        });
    }
}
