//! Small, seedable, version-stable pseudo-random number generators.
//!
//! Workload generators must be bit-for-bit reproducible across builds
//! and dependency upgrades, so the simulator does not use the `rand`
//! crate internally. These generators implement well-known public
//! algorithms (splitmix64 and xorshift64*) whose output is fixed
//! forever.
//!
//! # Examples
//!
//! ```
//! use sim_core::rng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! ```

/// Sebastiano Vigna's splitmix64 generator.
///
/// Fast, passes BigCrush, and — critically for this workspace — its
/// output sequence is fixed by the algorithm, not by a dependency
/// version. Used to seed and drive all synthetic workloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give
    /// independent-looking streams; the same seed always gives the
    /// same stream.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses the widening-multiply technique (Lemire); the slight
    /// modulo bias of the plain approach is removed by rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Marsaglia's xorshift64* generator.
///
/// Kept alongside [`SplitMix64`] so that code needing two visibly
/// uncorrelated streams (e.g. addresses vs. think-time jitter) can use
/// different algorithms rather than two seeds of one algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed; a zero seed is remapped (the
    /// all-zero state is a fixed point of xorshift).
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        };
        XorShift64Star { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 from the public splitmix64
        // reference implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut g = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_hits_every_value_of_small_range() {
        let mut g = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[g.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(123);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements an identity shuffle is astronomically
        // unlikely; treat it as failure.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xorshift_zero_seed_is_not_stuck() {
        let mut g = XorShift64Star::new(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn chance_extremes() {
        let mut g = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(!g.chance(0.0));
            assert!(g.chance(1.0));
        }
    }
}
