//! Foundational types shared by every crate in the conflict-miss
//! reproduction workspace.
//!
//! This crate deliberately has no dependencies (other than optional
//! [`serde`] derives) so that the simulation substrate is fully
//! deterministic and self-contained:
//!
//! * [`Addr`] / [`LineAddr`] — byte and cache-line addresses;
//! * [`Cycle`] — simulated time;
//! * [`rng`] — small, seedable, version-stable PRNGs
//!   ([`rng::SplitMix64`], [`rng::XorShift64Star`]);
//! * [`hash`] — the fast unkeyed [`hash::FxHasher`] for
//!   simulator-internal maps ([`hash::FxHashMap`],
//!   [`hash::FxHashSet`]);
//! * [`fault`] — seeded, deterministic fault injection plus the
//!   retry/backoff policy recovery sites share;
//! * [`parallel`] — the order-preserving fork/join scheduler every
//!   experiment fans independent cells out with;
//! * [`probe`] — zero-overhead-when-disabled observability probes
//!   (event sinks, per-epoch folds, named counter registry);
//! * [`registry`] — the canonical contract registry (schema
//!   identifiers, span-name prefixes, bench-group prefixes, hot entry
//!   points) that runtime checks and `simlint` both consume;
//! * [`span`] — hierarchical self-profiling spans (per-phase timing
//!   with the same zero-overhead-when-disarmed discipline);
//! * [`stats`] — counters, ratios and accumulators used to report
//!   hit rates and speedups.
//!
//! # Examples
//!
//! ```
//! use sim_core::{Addr, LineAddr};
//!
//! let a = Addr::new(0x1_2345);
//! let line = a.line(64);
//! assert_eq!(line, LineAddr::new(0x1_2345 >> 6));
//! assert_eq!(line.base_addr(64), Addr::new(0x1_2340));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cycle;
pub mod fault;
pub mod hash;
pub mod parallel;
pub mod probe;
pub mod registry;
pub mod rng;
pub mod span;
pub mod stats;

pub use addr::{Addr, LineAddr};
pub use cycle::Cycle;

/// Returns `log2(n)` for a power of two, or `None` otherwise.
///
/// Cache geometry code uses this to validate sizes and to split
/// addresses into offset/index/tag fields.
///
/// # Examples
///
/// ```
/// assert_eq!(sim_core::log2_exact(64), Some(6));
/// assert_eq!(sim_core::log2_exact(48), None);
/// assert_eq!(sim_core::log2_exact(0), None);
/// ```
#[must_use]
pub fn log2_exact(n: u64) -> Option<u32> {
    if n.is_power_of_two() {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_exact_powers() {
        for shift in 0..63 {
            assert_eq!(log2_exact(1 << shift), Some(shift));
        }
    }

    #[test]
    fn log2_exact_non_powers() {
        for n in [0u64, 3, 5, 6, 7, 9, 100, 1000, u64::MAX] {
            assert_eq!(log2_exact(n), None, "n = {n}");
        }
    }
}
