//! The canonical contract registry: one authoritative home for every
//! cross-crate string contract the workspace's tools agree on.
//!
//! Three families of contracts used to be duplicated across crates —
//! machine-readable schema identifiers (`bench-repro/2`, …) spelled
//! inline at every emit and parse site, span-name prefixes defined in
//! [`crate::span`] *and* privately mirrored inside `simlint`, and
//! criterion bench-group prefixes living only inside `simlint`. Drift
//! between the copies was caught (at best) by golden tests after the
//! fact. This module is the single definition; everything else —
//! `span.rs`'s runtime check, the `experiments` writers and readers,
//! and all of `simlint`'s registry-aware rules (`span-name`,
//! `bench-prefix`, `registry-drift`) — consumes it.
//!
//! The module is data plus tiny total predicates: no I/O, no
//! allocation, no dependencies, so `simlint` can link it while staying
//! buildable before anything else in the offline CI container.

/// Schema identifier of the bench report (`repro --bench-json`).
pub const SCHEMA_BENCH: &str = "bench-repro/2";

/// Schema identifier of the probe JSONL stream (`repro --probe`).
pub const SCHEMA_OBS: &str = "obs-repro/1";

/// Schema identifier of the span trace JSONL (`repro --trace-out`).
pub const SCHEMA_TRACE: &str = "trace-repro/1";

/// Schema identifier of the checkpoint JSONL (`repro --checkpoint`).
pub const SCHEMA_FAULT: &str = "fault-repro/1";

/// Schema identifier of the lint JSONL (`simlint --json`).
pub const SCHEMA_LINT: &str = "lint-repro/2";

/// Schema identifier of the miss-ratio-curve JSONL (`repro --mrc`).
pub const SCHEMA_MRC: &str = "mrc-repro/1";

/// Every current schema identifier, sorted by family name.
pub const SCHEMAS: [&str; 6] = [
    SCHEMA_BENCH,
    SCHEMA_FAULT,
    SCHEMA_LINT,
    SCHEMA_MRC,
    SCHEMA_OBS,
    SCHEMA_TRACE,
];

/// The canonical identifier for a schema family (`"bench"`, `"obs"`,
/// `"trace"`, `"fault"`, `"lint"`, `"mrc"`), or `None` for an unknown
/// family.
///
/// A schema string is spelled `<family>-repro/<version>`; the family
/// resolves which current identifier a given spelling must match.
#[must_use]
pub fn canonical_schema(family: &str) -> Option<&'static str> {
    match family {
        "bench" => Some(SCHEMA_BENCH),
        "obs" => Some(SCHEMA_OBS),
        "trace" => Some(SCHEMA_TRACE),
        "fault" => Some(SCHEMA_FAULT),
        "lint" => Some(SCHEMA_LINT),
        "mrc" => Some(SCHEMA_MRC),
        _ => None,
    }
}

/// Registered span-name prefixes, one per instrumented component.
/// Every name passed to [`crate::span::enter`] or
/// [`crate::span::scope`] must start with one of these; the simlint
/// `span-name` rule enforces it at call sites and
/// `obs verify-trace` re-checks emitted streams.
pub const SPAN_NAME_PREFIXES: [&str; 8] = [
    "arena_", "cell_", "fault_", "fig_", "probe_", "replay_", "sched_", "sweep_",
];

/// Whether `name` carries a registered span-name prefix (see
/// [`SPAN_NAME_PREFIXES`]).
#[must_use]
pub fn span_name_registered(name: &str) -> bool {
    SPAN_NAME_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Layer prefixes a criterion benchmark group name may carry, from
/// ROADMAP item 5: the prefix names the layer a group exercises, so
/// bench reports and CI deltas stay navigable as groups accumulate.
/// The simlint `bench-prefix` rule enforces this at
/// `benchmark_group(..)` call sites.
pub const BENCH_GROUP_PREFIXES: [&str; 6] = [
    "kernel_",
    "trace_",
    "probe_",
    "sched_",
    "figure_",
    "substrate/",
];

/// Whether `name` carries a registered bench-group layer prefix (see
/// [`BENCH_GROUP_PREFIXES`]).
#[must_use]
pub fn bench_group_registered(name: &str) -> bool {
    BENCH_GROUP_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// The registered hot entry points: the function names through which
/// every simulated event flows during replay. A panic or heap
/// allocation in code *reachable* from any of these aborts or stalls
/// a multi-hour sweep, so simlint's graph rules (`transitive-panic`,
/// `hot-path-alloc`) walk the workspace call graph starting here.
///
/// Registration is by function name, not path: the kernel's batched,
/// partitioned, and per-event forms all funnel through these, and a
/// new crate that defines a function with one of these names opts
/// straight into the hot-path contract.
pub const HOT_ENTRY_POINTS: [&str; 14] = [
    "access_block",
    "access_block_with",
    "access_partitioned",
    "access_partitioned_with",
    "access_parts",
    "access_parts_block",
    "access_parts_partitioned",
    "fill_at",
    "fill_parts",
    "observe_block",
    "observe_partitioned",
    "observe_parts",
    "peek_at",
    "probe_at",
];

/// Whether `name` is a registered hot entry point (see
/// [`HOT_ENTRY_POINTS`]).
#[must_use]
pub fn hot_entry_point(name: &str) -> bool {
    HOT_ENTRY_POINTS.contains(&name)
}

/// Name suffixes marking a *cold escape*: a function spelled
/// `..._slow` or `..._cold` is the guarded slow path of a
/// zero-overhead-when-disabled facility (`probe::emit` →
/// `emit_slow`), entered only behind an armed check. The hot-path
/// graph rules stop traversal at these functions — the armed-check
/// discipline (enforced separately by `probe-guard`) is what keeps
/// them off the replay fast path, so their allocations are by design.
pub const COLD_FN_SUFFIXES: [&str; 2] = ["_cold", "_slow"];

/// Whether `name` is a registered cold escape (see
/// [`COLD_FN_SUFFIXES`]).
#[must_use]
pub fn cold_fn(name: &str) -> bool {
    COLD_FN_SUFFIXES.iter().any(|s| name.ends_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_are_family_slash_version_shaped() {
        for schema in SCHEMAS {
            let (family, version) = schema.split_once("-repro/").expect("shape");
            assert!(!family.is_empty() && family.chars().all(|c| c.is_ascii_lowercase()));
            assert!(!version.is_empty() && version.chars().all(|c| c.is_ascii_digit()));
            assert_eq!(canonical_schema(family), Some(schema));
        }
        assert_eq!(canonical_schema("amb"), None);
    }

    #[test]
    fn prefix_predicates() {
        assert!(span_name_registered("replay_partitioned"));
        assert!(!span_name_registered("mystery_phase"));
        assert!(bench_group_registered("substrate/cache_kernel"));
        assert!(bench_group_registered("figure_drivers"));
        assert!(!bench_group_registered("misc"));
    }

    #[test]
    fn entry_points_cover_the_kernel_and_mct_forms() {
        for name in ["access_block", "observe_partitioned", "fill_at"] {
            assert!(hot_entry_point(name));
        }
        assert!(!hot_entry_point("render_table"));
        assert!(cold_fn("emit_slow"));
        assert!(cold_fn("refill_cold"));
        assert!(!cold_fn("emit"));
        // Sorted, so diagnostics listing them read deterministically.
        let mut sorted = HOT_ENTRY_POINTS;
        sorted.sort_unstable();
        assert_eq!(sorted, HOT_ENTRY_POINTS);
    }
}
