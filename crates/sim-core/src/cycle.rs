//! Simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in processor clock cycles.
///
/// `Cycle` is ordered and supports the arithmetic a timing model needs
/// (advance by a latency, measure a distance) while preventing the
/// accidental use of a cycle count as, say, an address.
///
/// # Examples
///
/// ```
/// use sim_core::Cycle;
///
/// let start = Cycle::ZERO;
/// let done = start + 20;
/// assert_eq!(done - start, 20);
/// assert!(done > start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Cycle(u64);

impl Cycle {
    /// The start of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle value from a raw count.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the later of two times (e.g. "ready when both the port
    /// is free and the data has arrived").
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the number of cycles from `earlier` to `self`, or zero
    /// if `earlier` is in the future.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, latency: u64) -> Cycle {
        Cycle(self.0 + latency)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, latency: u64) {
        self.0 += latency;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = Cycle::new(10);
        let b = a + 5;
        assert_eq!(b.raw(), 15);
        assert_eq!(b - a, 5);
        assert!(b > a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn since_saturates() {
        let a = Cycle::new(10);
        let b = Cycle::new(20);
        assert_eq!(b.since(a), 10);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    fn add_assign_advances() {
        let mut c = Cycle::ZERO;
        c += 100;
        c += 1;
        assert_eq!(c, Cycle::new(101));
    }
}
