//! Zero-overhead-when-disabled observability probes.
//!
//! Simulator hot paths (cache fills, MCT classifications, assist-buffer
//! filter decisions) call [`emit`] with a [`ProbeEvent`]. When no sink
//! is installed the call is a single relaxed atomic load and a branch —
//! cheap enough to leave compiled into release binaries (the
//! `substrate/probe_null` bench guards this). When a [`Sink`] is
//! installed on the current thread via [`with_sink`], events flow into
//! it synchronously.
//!
//! Sinks are **thread-local** by design: the [`crate::parallel`]
//! scheduler runs each experiment cell entirely on one worker thread,
//! so a per-cell sink observes exactly that cell's events regardless of
//! how many cells run concurrently. This is what makes probe output
//! byte-identical across `--threads 1` and `--threads N` — each cell
//! folds its own events, and the harness sorts the folded records
//! before serializing.
//!
//! Three sinks are provided:
//!
//! * [`NullSink`] — discards everything (measures dispatch overhead);
//! * [`EpochSink`] — folds events into fixed-interval
//!   [`EpochSnapshot`]s plus a whole-run [`Registry`] of named
//!   counters and histograms;
//! * [`JsonlSink`] — streams one compact JSON object per event.
//!
//! # Examples
//!
//! ```
//! use sim_core::probe::{self, EpochSink, ProbeEvent};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let sink = Rc::new(RefCell::new(EpochSink::new(2)));
//! probe::with_sink(sink.clone(), || {
//!     for hit in [true, false, true, true] {
//!         probe::emit(ProbeEvent::Access { hit });
//!     }
//! });
//! let cell = Rc::try_unwrap(sink).unwrap().into_inner().finish();
//! assert_eq!(cell.epochs.len(), 2);
//! assert_eq!(cell.totals.counter("access"), 4);
//! assert_eq!(cell.totals.counter("access.hit"), 3);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::hash::FxHashMap;
use crate::stats::Histogram;

/// How an MCT lookup resolved, at full detail.
///
/// The classifier itself only distinguishes conflict (tag match) from
/// capacity (no match); the probe layer splits the no-match side into
/// [`Empty`](MctLookup::Empty) vs [`Stale`](MctLookup::Stale) and the
/// match side into [`Match`](MctLookup::Match) vs
/// [`Alias`](MctLookup::Alias) — a *partial-tag false positive*, where
/// the saved low bits match but the full tag does not (§4.2's
/// accuracy-vs-bits trade-off made visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MctLookup {
    /// The entry was never written (cold set).
    Empty,
    /// The full tag of the last-evicted line matched.
    Match,
    /// The masked tag matched but the full tag did not: a partial-tag
    /// false positive counted as a conflict by the classifier.
    Alias,
    /// A valid entry whose tag did not match.
    Stale,
}

impl MctLookup {
    /// Stable lower-case name used as a counter suffix and in JSONL.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            MctLookup::Empty => "empty",
            MctLookup::Match => "match",
            MctLookup::Alias => "alias",
            MctLookup::Stale => "stale",
        }
    }
}

/// Which MCT-guided filter made a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterUnit {
    /// Victim cache: suppress the swap of a buffer hit back into L1.
    VictimSwap,
    /// Victim cache: suppress placing an evicted line in the buffer.
    VictimFill,
    /// Next-line prefetcher: suppress issuing the prefetch.
    Prefetch,
    /// Cache exclusion: redirect a miss into the bypass buffer.
    Exclude,
    /// Pseudo-associative cache: conflict-bit replacement protection
    /// (exactly one candidate held its bit, so the other was evicted).
    PseudoProtect,
    /// Adaptive miss buffer: victim-partition placement decision.
    AmbVictim,
    /// Adaptive miss buffer: prefetch-issue decision.
    AmbPrefetch,
    /// Adaptive miss buffer: exclusion decision.
    AmbExclude,
}

impl FilterUnit {
    /// Stable name used as a counter infix and in JSONL.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FilterUnit::VictimSwap => "victim_swap",
            FilterUnit::VictimFill => "victim_fill",
            FilterUnit::Prefetch => "prefetch",
            FilterUnit::Exclude => "exclude",
            FilterUnit::PseudoProtect => "pseudo_protect",
            FilterUnit::AmbVictim => "amb_victim",
            FilterUnit::AmbPrefetch => "amb_prefetch",
            FilterUnit::AmbExclude => "amb_exclude",
        }
    }
}

/// The role a line holds inside the adaptive miss buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmbRole {
    /// Inserted as a victim-cache line.
    Victim,
    /// Inserted by the prefetcher.
    Prefetch,
    /// Inserted as an excluded (bypassed) line.
    Exclusion,
}

impl AmbRole {
    /// Stable name used as a counter suffix and in JSONL.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AmbRole::Victim => "victim",
            AmbRole::Prefetch => "prefetch",
            AmbRole::Exclusion => "exclusion",
        }
    }
}

/// One observable event on a simulator hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// A memory-system access completed (hit or miss), at the level
    /// the experiment measures (L1 + assist buffer).
    Access {
        /// Whether the access hit (in L1 or the assist buffer).
        hit: bool,
    },
    /// The miss classifier produced a verdict for a missing line.
    Classify {
        /// The cache set of the miss.
        set: u32,
        /// `true` = conflict, `false` = capacity.
        conflict: bool,
        /// Full lookup detail (empty / match / alias / stale).
        lookup: MctLookup,
    },
    /// A line was installed in a probed cache set.
    SetFill {
        /// The set filled.
        set: u32,
    },
    /// A resident line was displaced from a probed cache set.
    SetEvict {
        /// The set evicted from.
        set: u32,
    },
    /// A line's conflict bit entered (`set_bit`) or left (`!set_bit`)
    /// a cache set.
    ConflictBit {
        /// The cache set involved.
        set: u32,
        /// `true` when a conflict-marked line was installed, `false`
        /// when one was displaced.
        set_bit: bool,
    },
    /// An MCT-guided filter made a go/no-go decision.
    Filter {
        /// Which filter decided.
        unit: FilterUnit,
        /// Whether the filter fired (took its non-default action).
        fired: bool,
    },
    /// A line was installed in (or re-assigned within) the adaptive
    /// miss buffer under a partition role.
    AmbPartition {
        /// The role the line now holds.
        role: AmbRole,
    },
    /// The 3C oracle classified the same miss as the MCT, for accuracy
    /// tracking.
    Oracle {
        /// The oracle's verdict (`true` = conflict).
        oracle_conflict: bool,
        /// Whether the MCT agreed with the oracle.
        agree: bool,
    },
}

/// A consumer of probe events, installed per thread via [`with_sink`].
///
/// Implementations must not call [`emit`] re-entrantly.
pub trait Sink {
    /// Consumes one event.
    fn event(&mut self, ev: &ProbeEvent);
}

/// A sink that discards every event — exists to measure the cost of
/// armed dispatch (see `substrate/probe_null`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(&mut self, _ev: &ProbeEvent) {}
}

/// Named monotonic counters plus log₂ histograms, keyed by static
/// strings so hot-path updates never allocate.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter.
    pub fn bump(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Records one sample in the named histogram.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named counter's value (0 when never bumped).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Merges another registry's counters and histograms into this
    /// one.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in other.counters() {
            self.bump(name, v);
        }
        for (name, h) in other.histograms() {
            self.histograms.entry(name).or_default().merge(h);
        }
    }
}

/// Per-epoch fold of the event stream: the time-sliced view of a run.
///
/// An epoch closes every `epoch_len` [`ProbeEvent::Access`] events;
/// counts of other event kinds land in the epoch of the access stream
/// position they occurred at.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpochSnapshot {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Accesses in this epoch (== epoch length except a trailing
    /// partial epoch).
    pub accesses: u64,
    /// Hits among those accesses.
    pub hits: u64,
    /// Conflict classifications.
    pub conflict: u64,
    /// Capacity classifications.
    pub capacity: u64,
    /// Partial-tag false positives among the conflicts.
    pub alias: u64,
    /// Oracle comparisons where the MCT agreed.
    pub oracle_agree: u64,
    /// Oracle comparisons total.
    pub oracle_total: u64,
    /// Top-K sets by conflict classifications this epoch, as
    /// `(set, count)` sorted by descending count then ascending set.
    pub hot_sets: Vec<(u32, u64)>,
}

impl EpochSnapshot {
    /// Misses in this epoch.
    #[must_use]
    pub const fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// Everything an [`EpochSink`] folded out of one cell's event stream.
#[derive(Debug, Clone, Default)]
pub struct CellProbe {
    /// The closed epochs, in order (a trailing partial epoch is
    /// included when it saw at least one access).
    pub epochs: Vec<EpochSnapshot>,
    /// Whole-run named counters and histograms.
    pub totals: Registry,
    /// Top sets by whole-run conflict classifications, sorted by
    /// descending count then ascending set.
    pub hot_sets: Vec<(u32, u64)>,
}

/// How many hot sets an [`EpochSink`] keeps per epoch and per cell.
pub const HOT_SETS_TOP_K: usize = 4;

/// Folds the event stream into [`EpochSnapshot`]s plus a whole-run
/// [`Registry`] — the `--probe epoch:N` sink.
#[derive(Debug)]
pub struct EpochSink {
    epoch_len: u64,
    cur: EpochSnapshot,
    cur_sets: FxHashMap<u32, u64>,
    epochs: Vec<EpochSnapshot>,
    all_sets: FxHashMap<u32, u64>,
    totals: Registry,
}

impl EpochSink {
    /// Creates a sink that closes an epoch every `epoch_len` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    #[must_use]
    pub fn new(epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        EpochSink {
            epoch_len,
            cur: EpochSnapshot::default(),
            cur_sets: FxHashMap::default(),
            epochs: Vec::new(),
            all_sets: FxHashMap::default(),
            totals: Registry::new(),
        }
    }

    fn close_epoch(&mut self) {
        let mut snap = std::mem::take(&mut self.cur);
        snap.hot_sets = top_k(&self.cur_sets, HOT_SETS_TOP_K);
        self.cur_sets.clear();
        self.cur.epoch = snap.epoch + 1;
        self.totals.record("epoch.misses", snap.misses());
        self.epochs.push(snap);
    }

    /// Closes the trailing partial epoch and returns the folded cell
    /// record.
    #[must_use]
    pub fn finish(mut self) -> CellProbe {
        if self.cur.accesses > 0 {
            self.close_epoch();
        }
        let hot_sets = top_k(&self.all_sets, HOT_SETS_TOP_K);
        for count in self.all_sets.values() {
            self.totals.record("set.conflicts", *count);
        }
        CellProbe {
            epochs: self.epochs,
            totals: self.totals,
            hot_sets,
        }
    }
}

/// The top `k` `(set, count)` pairs by descending count, ties broken
/// by ascending set — a deterministic order regardless of map
/// iteration.
fn top_k(sets: &FxHashMap<u32, u64>, k: usize) -> Vec<(u32, u64)> {
    let mut v: Vec<(u32, u64)> = sets.iter().map(|(&s, &c)| (s, c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

impl Sink for EpochSink {
    fn event(&mut self, ev: &ProbeEvent) {
        match *ev {
            ProbeEvent::Access { hit } => {
                self.cur.accesses += 1;
                self.totals.bump("access", 1);
                if hit {
                    self.cur.hits += 1;
                    self.totals.bump("access.hit", 1);
                }
                if self.cur.accesses == self.epoch_len {
                    self.close_epoch();
                }
            }
            ProbeEvent::Classify {
                set,
                conflict,
                lookup,
            } => {
                if conflict {
                    self.cur.conflict += 1;
                    self.totals.bump("classify.conflict", 1);
                    *self.cur_sets.entry(set).or_insert(0) += 1;
                    *self.all_sets.entry(set).or_insert(0) += 1;
                } else {
                    self.cur.capacity += 1;
                    self.totals.bump("classify.capacity", 1);
                }
                match lookup {
                    MctLookup::Empty => self.totals.bump("mct.empty", 1),
                    MctLookup::Match => self.totals.bump("mct.match", 1),
                    MctLookup::Alias => {
                        self.cur.alias += 1;
                        self.totals.bump("mct.alias", 1);
                    }
                    MctLookup::Stale => self.totals.bump("mct.stale", 1),
                }
            }
            ProbeEvent::SetFill { .. } => self.totals.bump("set.fill", 1),
            ProbeEvent::SetEvict { .. } => self.totals.bump("set.evict", 1),
            ProbeEvent::ConflictBit { set_bit, .. } => {
                if set_bit {
                    self.totals.bump("cbit.set", 1);
                } else {
                    self.totals.bump("cbit.clear", 1);
                }
            }
            ProbeEvent::Filter { unit, fired } => {
                let name = match (unit, fired) {
                    (FilterUnit::VictimSwap, true) => "filter.victim_swap.fired",
                    (FilterUnit::VictimSwap, false) => "filter.victim_swap.pass",
                    (FilterUnit::VictimFill, true) => "filter.victim_fill.fired",
                    (FilterUnit::VictimFill, false) => "filter.victim_fill.pass",
                    (FilterUnit::Prefetch, true) => "filter.prefetch.fired",
                    (FilterUnit::Prefetch, false) => "filter.prefetch.pass",
                    (FilterUnit::Exclude, true) => "filter.exclude.fired",
                    (FilterUnit::Exclude, false) => "filter.exclude.pass",
                    (FilterUnit::PseudoProtect, true) => "filter.pseudo_protect.fired",
                    (FilterUnit::PseudoProtect, false) => "filter.pseudo_protect.pass",
                    (FilterUnit::AmbVictim, true) => "filter.amb_victim.fired",
                    (FilterUnit::AmbVictim, false) => "filter.amb_victim.pass",
                    (FilterUnit::AmbPrefetch, true) => "filter.amb_prefetch.fired",
                    (FilterUnit::AmbPrefetch, false) => "filter.amb_prefetch.pass",
                    (FilterUnit::AmbExclude, true) => "filter.amb_exclude.fired",
                    (FilterUnit::AmbExclude, false) => "filter.amb_exclude.pass",
                };
                self.totals.bump(name, 1);
            }
            ProbeEvent::AmbPartition { role } => {
                let name = match role {
                    AmbRole::Victim => "amb.victim",
                    AmbRole::Prefetch => "amb.prefetch",
                    AmbRole::Exclusion => "amb.exclusion",
                };
                self.totals.bump(name, 1);
            }
            ProbeEvent::Oracle {
                oracle_conflict,
                agree,
            } => {
                self.cur.oracle_total += 1;
                self.totals.bump("oracle.total", 1);
                if oracle_conflict {
                    self.totals.bump("oracle.conflict", 1);
                }
                if agree {
                    self.cur.oracle_agree += 1;
                    self.totals.bump("oracle.agree", 1);
                }
            }
        }
    }
}

/// Renders an event as the comma-separated *inner* fields of a JSON
/// object (no braces), so callers can prepend context fields like the
/// target and cell name.
#[must_use]
pub fn event_json_fields(ev: &ProbeEvent) -> String {
    match *ev {
        ProbeEvent::Access { hit } => format!("\"kind\":\"access\",\"hit\":{hit}"),
        ProbeEvent::Classify {
            set,
            conflict,
            lookup,
        } => format!(
            "\"kind\":\"classify\",\"set\":{set},\"conflict\":{conflict},\"lookup\":\"{}\"",
            lookup.name()
        ),
        ProbeEvent::SetFill { set } => format!("\"kind\":\"set_fill\",\"set\":{set}"),
        ProbeEvent::SetEvict { set } => format!("\"kind\":\"set_evict\",\"set\":{set}"),
        ProbeEvent::ConflictBit { set, set_bit } => {
            format!("\"kind\":\"conflict_bit\",\"set\":{set},\"set_bit\":{set_bit}")
        }
        ProbeEvent::Filter { unit, fired } => format!(
            "\"kind\":\"filter\",\"unit\":\"{}\",\"fired\":{fired}",
            unit.name()
        ),
        ProbeEvent::AmbPartition { role } => {
            format!("\"kind\":\"amb_partition\",\"role\":\"{}\"", role.name())
        }
        ProbeEvent::Oracle {
            oracle_conflict,
            agree,
        } => format!("\"kind\":\"oracle\",\"oracle_conflict\":{oracle_conflict},\"agree\":{agree}"),
    }
}

/// Streams one compact JSON object per event to a writer — the
/// `--probe raw` sink.
///
/// Write errors are sticky: the first failure stops further writes,
/// every event arriving after it is *counted* as dropped, and
/// [`JsonlSink::finish`] reports both numbers — nothing is swallowed
/// silently.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    written: u64,
    dropped: u64,
    failed: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            written: 0,
            dropped: 0,
            failed: false,
        }
    }

    /// Events the sink discarded after its first write failure (zero
    /// on a healthy sink).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the sink, returning the writer and the number of
    /// events written, or an error if any write failed.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if any event failed to serialize; the
    /// message carries the written/dropped counts so a partial file is
    /// diagnosable.
    pub fn finish(self) -> std::io::Result<(W, u64)> {
        if self.failed {
            return Err(std::io::Error::other(format!(
                "probe event write failed ({} events written, {} dropped after the failure)",
                self.written, self.dropped
            )));
        }
        Ok((self.out, self.written))
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn event(&mut self, ev: &ProbeEvent) {
        if self.failed {
            self.dropped += 1;
            return;
        }
        if writeln!(self.out, "{{{}}}", event_json_fields(ev)).is_err() {
            self.failed = true;
            self.dropped += 1;
        } else {
            self.written += 1;
        }
    }
}

/// Count of sinks installed across all threads. Non-zero arms the
/// thread-local check in [`emit`]; zero keeps the hot path to one
/// relaxed load.
static ARMED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SINK: RefCell<Option<Rc<RefCell<dyn Sink>>>> = const { RefCell::new(None) };
}

/// Whether any sink is installed on any thread.
///
/// Instrumentation sites use this to skip *constructing* expensive
/// events (e.g. a second MCT lookup for alias detail); [`emit`]
/// re-checks internally so calling it directly is always correct.
#[inline]
#[must_use]
pub fn active() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// Emits an event to the current thread's sink, if one is installed.
#[inline]
pub fn emit(ev: ProbeEvent) {
    if !active() {
        return;
    }
    emit_slow(&ev);
}

#[cold]
fn emit_slow(ev: &ProbeEvent) {
    let sink = SINK.with(|s| s.borrow().clone());
    if let Some(sink) = sink {
        sink.borrow_mut().event(ev);
    }
}

/// Installs `sink` on the current thread for the duration of `f`,
/// restoring any previously installed sink afterwards (also on
/// unwind). The caller keeps its own `Rc` handle to read the sink
/// back out.
pub fn with_sink<R>(sink: Rc<RefCell<dyn Sink>>, f: impl FnOnce() -> R) -> R {
    struct Guard(Option<Rc<RefCell<dyn Sink>>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            SINK.with(|s| *s.borrow_mut() = self.0.take());
            ARMED.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let prev = SINK.with(|s| s.borrow_mut().replace(sink));
    ARMED.fetch_add(1, Ordering::Relaxed);
    let _guard = Guard(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scoped<R>(sink: Rc<RefCell<EpochSink>>, f: impl FnOnce() -> R) -> CellProbe {
        with_sink(sink.clone(), f);
        Rc::try_unwrap(sink)
            .expect("sink uninstalled after scope")
            .into_inner()
            .finish()
    }

    #[test]
    fn disarmed_emit_is_silent() {
        assert!(!active());
        emit(ProbeEvent::Access { hit: true });
        assert!(!active());
    }

    #[test]
    fn epochs_close_on_access_boundaries() {
        let sink = Rc::new(RefCell::new(EpochSink::new(3)));
        let cell = scoped(sink, || {
            for i in 0..7 {
                emit(ProbeEvent::Access { hit: i % 2 == 0 });
            }
        });
        assert_eq!(cell.epochs.len(), 3, "two full epochs + one partial");
        assert_eq!(cell.epochs[0].accesses, 3);
        assert_eq!(cell.epochs[2].accesses, 1);
        assert_eq!(cell.totals.counter("access"), 7);
        assert_eq!(cell.totals.counter("access.hit"), 4);
    }

    #[test]
    fn classify_events_fold_into_epoch_and_hot_sets() {
        let sink = Rc::new(RefCell::new(EpochSink::new(10)));
        let cell = scoped(sink, || {
            emit(ProbeEvent::Access { hit: false });
            for _ in 0..3 {
                emit(ProbeEvent::Classify {
                    set: 5,
                    conflict: true,
                    lookup: MctLookup::Match,
                });
            }
            emit(ProbeEvent::Classify {
                set: 9,
                conflict: true,
                lookup: MctLookup::Alias,
            });
            emit(ProbeEvent::Classify {
                set: 2,
                conflict: false,
                lookup: MctLookup::Stale,
            });
        });
        let e = &cell.epochs[0];
        assert_eq!((e.conflict, e.capacity, e.alias), (4, 1, 1));
        assert_eq!(e.hot_sets, vec![(5, 3), (9, 1)]);
        assert_eq!(cell.hot_sets, vec![(5, 3), (9, 1)]);
        assert_eq!(cell.totals.counter("mct.match"), 3);
        assert_eq!(cell.totals.counter("mct.alias"), 1);
        assert_eq!(cell.totals.counter("mct.stale"), 1);
    }

    #[test]
    fn sinks_are_thread_local() {
        let sink = Rc::new(RefCell::new(EpochSink::new(4)));
        let cell = scoped(sink, || {
            emit(ProbeEvent::Access { hit: true });
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    // Armed globally, but this thread has no sink: the
                    // event must not leak into the outer sink.
                    emit(ProbeEvent::Access { hit: false });
                });
            });
        });
        assert_eq!(cell.totals.counter("access"), 1);
    }

    #[test]
    fn nested_scopes_restore_the_outer_sink() {
        let outer = Rc::new(RefCell::new(EpochSink::new(4)));
        let cell = scoped(outer, || {
            emit(ProbeEvent::Access { hit: true });
            let inner = Rc::new(RefCell::new(EpochSink::new(4)));
            with_sink(inner.clone(), || {
                emit(ProbeEvent::Access { hit: false });
            });
            let inner = Rc::try_unwrap(inner).unwrap().into_inner().finish();
            assert_eq!(inner.totals.counter("access"), 1);
            emit(ProbeEvent::Access { hit: true });
        });
        assert_eq!(cell.totals.counter("access"), 2);
        assert_eq!(cell.totals.counter("access.hit"), 2);
    }

    #[test]
    fn jsonl_sink_streams_one_object_per_line() {
        let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
        with_sink(sink.clone(), || {
            emit(ProbeEvent::Access { hit: true });
            emit(ProbeEvent::Filter {
                unit: FilterUnit::Prefetch,
                fired: false,
            });
        });
        let (buf, n) = Rc::try_unwrap(sink).unwrap().into_inner().finish().unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "{\"kind\":\"access\",\"hit\":true}\n\
             {\"kind\":\"filter\",\"unit\":\"prefetch\",\"fired\":false}\n"
        );
    }

    #[test]
    fn jsonl_sink_reports_failed_writes_and_dropped_events() {
        /// Accepts `limit` bytes, then fails every write.
        #[derive(Debug)]
        struct Choked {
            limit: usize,
            taken: usize,
        }
        impl std::io::Write for Choked {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.taken + buf.len() > self.limit {
                    return Err(std::io::Error::other("disk full"));
                }
                self.taken += buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut sink = JsonlSink::new(Choked {
            limit: 40,
            taken: 0,
        });
        sink.event(&ProbeEvent::Access { hit: true }); // fits
        for _ in 0..3 {
            sink.event(&ProbeEvent::Access { hit: false }); // choked
        }
        assert_eq!(sink.dropped(), 3);
        let err = sink.finish().expect_err("failed sink must not finish Ok");
        let msg = err.to_string();
        assert!(msg.contains("1 events written"), "got: {msg}");
        assert!(msg.contains("3 dropped"), "got: {msg}");
    }

    #[test]
    fn registry_merge_adds_counters_and_histograms() {
        let mut a = Registry::new();
        a.bump("x", 2);
        a.record("h", 8);
        let mut b = Registry::new();
        b.bump("x", 3);
        b.bump("y", 1);
        b.record("h", 16);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = a.histograms().next().unwrap().1;
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn oracle_events_track_agreement() {
        let sink = Rc::new(RefCell::new(EpochSink::new(8)));
        let cell = scoped(sink, || {
            emit(ProbeEvent::Access { hit: false });
            emit(ProbeEvent::Oracle {
                oracle_conflict: true,
                agree: true,
            });
            emit(ProbeEvent::Oracle {
                oracle_conflict: false,
                agree: false,
            });
        });
        let e = &cell.epochs[0];
        assert_eq!((e.oracle_agree, e.oracle_total), (1, 2));
        assert_eq!(cell.totals.counter("oracle.conflict"), 1);
    }
}
