//! Statistics primitives used by every model in the workspace.
//!
//! Simulators report almost everything as a ratio of two event counts
//! (hit rate, prefetch accuracy, fraction of accesses causing a swap).
//! [`Ratio`] makes those reports uniform and guards against the usual
//! divide-by-zero edge cases; [`RunningMean`] aggregates per-benchmark
//! numbers into suite averages.

use core::fmt;

/// A pair of event counts reported as `hits / total`.
///
/// # Examples
///
/// ```
/// use sim_core::stats::Ratio;
///
/// let mut hr = Ratio::default();
/// for _ in 0..9 { hr.record(true); }
/// hr.record(false);
/// assert_eq!(hr.numerator(), 9);
/// assert_eq!(hr.denominator(), 10);
/// assert!((hr.value() - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ratio {
    numerator: u64,
    denominator: u64,
}

impl Ratio {
    /// Creates a ratio from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `numerator > denominator`.
    #[must_use]
    pub fn from_counts(numerator: u64, denominator: u64) -> Self {
        assert!(
            numerator <= denominator,
            "ratio numerator {numerator} exceeds denominator {denominator}"
        );
        Ratio {
            numerator,
            denominator,
        }
    }

    /// Records one event; `success` decides whether it counts toward
    /// the numerator.
    pub fn record(&mut self, success: bool) {
        self.denominator += 1;
        if success {
            self.numerator += 1;
        }
    }

    /// The successful-event count.
    #[must_use]
    pub const fn numerator(self) -> u64 {
        self.numerator
    }

    /// The total event count.
    #[must_use]
    pub const fn denominator(self) -> u64 {
        self.denominator
    }

    /// The ratio as a float, or 0.0 when no events were recorded.
    #[must_use]
    pub fn value(self) -> f64 {
        if self.denominator == 0 {
            0.0
        } else {
            self.numerator as f64 / self.denominator as f64
        }
    }

    /// The ratio as a percentage (0–100).
    #[must_use]
    pub fn percent(self) -> f64 {
        self.value() * 100.0
    }

    /// Merges another ratio's counts into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.numerator += other.numerator;
        self.denominator += other.denominator;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% ({}/{})",
            self.percent(),
            self.numerator,
            self.denominator
        )
    }
}

/// Incremental arithmetic mean of a stream of values.
///
/// # Examples
///
/// ```
/// use sim_core::stats::RunningMean;
///
/// let mut m = RunningMean::default();
/// m.push(1.0);
/// m.push(3.0);
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunningMean {
    count: u64,
    sum: f64,
}

impl RunningMean {
    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
    }

    /// The mean of the samples so far, or 0.0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The number of samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }
}

/// Geometric mean accumulator, the conventional way to average
/// speedups across a benchmark suite.
///
/// # Examples
///
/// ```
/// use sim_core::stats::GeoMean;
///
/// let mut g = GeoMean::default();
/// g.push(2.0);
/// g.push(8.0);
/// assert!((g.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GeoMean {
    count: u64,
    log_sum: f64,
}

impl GeoMean {
    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not strictly positive (speedups always are).
    pub fn push(&mut self, value: f64) {
        assert!(
            value > 0.0,
            "geometric mean requires positive samples, got {value}"
        );
        self.count += 1;
        self.log_sum += value.ln();
    }

    /// The geometric mean so far, or 1.0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            (self.log_sum / self.count as f64).exp()
        }
    }

    /// The number of samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }
}

/// A power-of-two-bucketed histogram of small integer samples
/// (latencies, queue depths).
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`, except bucket 0
/// which also holds zero. Fixed memory, O(1) insert, good enough to
/// read off medians and tails of simulated latencies.
///
/// # Examples
///
/// ```
/// use sim_core::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for lat in [1u64, 2, 20, 20, 100] {
///     h.record(lat);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 16.0); // median in the 20s bucket
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    // A Vec rather than [u64; 64] so the serde derive applies.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// A bucket-resolution percentile (`p` in `[0, 1]`): the lower
    /// bound of the bucket containing the p-th sample. 0.0 with no
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "percentile must be in [0, 1], got {p}"
        );
        if self.count == 0 {
            return 0.0;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0.0 } else { (1u64 << i) as f64 };
            }
        }
        self.max as f64
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::default().value(), 0.0);
        assert_eq!(Ratio::default().percent(), 0.0);
    }

    #[test]
    fn ratio_records_and_merges() {
        let mut a = Ratio::default();
        a.record(true);
        a.record(false);
        let mut b = Ratio::from_counts(3, 4);
        b.merge(a);
        assert_eq!(b.numerator(), 4);
        assert_eq!(b.denominator(), 6);
    }

    #[test]
    #[should_panic(expected = "exceeds denominator")]
    fn ratio_rejects_impossible_counts() {
        let _ = Ratio::from_counts(5, 4);
    }

    #[test]
    fn ratio_display_mentions_counts() {
        let r = Ratio::from_counts(1, 2);
        assert_eq!(r.to_string(), "50.00% (1/2)");
    }

    #[test]
    fn running_mean_basic() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        for v in [2.0, 4.0, 6.0] {
            m.push(v);
        }
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn geomean_identity_and_pairs() {
        let g = GeoMean::default();
        assert_eq!(g.mean(), 1.0);
        let mut g = GeoMean::default();
        g.push(0.5);
        g.push(2.0);
        assert!((g.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn geomean_rejects_nonpositive() {
        GeoMean::default().push(0.0);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0.0);
        for v in [0u64, 1, 1, 2, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut rng = crate::rng::SplitMix64::new(8);
        for _ in 0..10_000 {
            h.record(rng.next_below(1000));
        }
        let mut last = 0.0;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
        assert!(h.percentile(1.0) <= h.max() as f64);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 500);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn histogram_rejects_bad_percentile() {
        let _ = Histogram::new().percentile(1.5);
    }
}
