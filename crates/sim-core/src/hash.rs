//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default [`std::collections::HashMap`] uses SipHash-1-3 — a
//! keyed hash built to resist collision attacks from untrusted input.
//! The simulator's maps are keyed by its own line addresses, so that
//! defence buys nothing and costs a long dependency chain per lookup.
//! [`FxHasher`] replaces it with the Firefox/rustc multiply-and-rotate
//! mix: one wrapping multiply per 8 bytes, unkeyed, identical on every
//! run and platform.
//!
//! Determinism note: a [`FxHashMap`]/[`FxHashSet`] iterates in a
//! different order than the default map. None of the simulator's
//! outputs may depend on map iteration order — the determinism tests
//! (`tests/determinism.rs`, `tests/probe_determinism.rs`) pin this.
//!
//! # Examples
//!
//! ```
//! use sim_core::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// The odd constant from Fx/FireFox: `2^64 / phi`, rounded to odd.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" hasher: wrapping multiply + rotate per word.
///
/// Not collision-resistant against adversarial keys — only use for
/// maps whose keys the simulator itself generates.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(n: u64) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(n)
    }

    #[test]
    fn deterministic_across_builders() {
        for n in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_of(n), hash_of(n), "n = {n:#x}");
        }
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential line addresses — the common key pattern — must
        // not collapse onto each other.
        let hashes: FxHashSet<u64> = (0..10_000u64).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_whole_words() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for n in 0..1000 {
            m.insert(n, n * 3);
        }
        for n in 0..1000 {
            assert_eq!(m.get(&n), Some(&(n * 3)));
        }
    }
}
