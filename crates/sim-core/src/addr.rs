//! Byte and cache-line address newtypes.

use core::fmt;
use core::ops::{Add, Sub};

/// A byte address in the simulated (physical) address space.
///
/// `Addr` is a transparent wrapper around `u64` that exists to keep byte
/// addresses and [`LineAddr`]s (line numbers) statically distinct — mixing
/// the two is the classic cache-simulator bug.
///
/// # Examples
///
/// ```
/// use sim_core::Addr;
///
/// let a = Addr::new(0x1000);
/// assert_eq!(a.offset(64), 0);
/// assert_eq!((a + 8).offset(64), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line this byte address falls in.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_size` is not a power of two.
    #[must_use]
    pub fn line(self, line_size: u64) -> LineAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 >> line_size.trailing_zeros())
    }

    /// Returns the byte offset within a cache line of size `line_size`.
    #[must_use]
    pub fn offset(self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 & (line_size - 1)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;

    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_sub(rhs))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A cache-line address: the byte address divided by the line size.
///
/// A `LineAddr` is meaningful only together with the line size used to
/// derive it; all caches in one simulation share a single line size
/// (64 bytes in the paper's configuration), enforced by the hierarchy.
///
/// # Examples
///
/// ```
/// use sim_core::{Addr, LineAddr};
///
/// let line = Addr::new(0x1fff).line(64);
/// assert_eq!(line, LineAddr::new(0x7f));
/// assert_eq!(line.next(), LineAddr::new(0x80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the next sequential cache line (the target of a
    /// next-line prefetch).
    #[must_use]
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0.wrapping_add(1))
    }

    /// Returns the byte address of the first byte in this line.
    #[must_use]
    pub fn base_addr(self, line_size: u64) -> Addr {
        debug_assert!(line_size.is_power_of_two());
        Addr(self.0 << line_size.trailing_zeros())
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl From<LineAddr> for u64 {
    fn from(l: LineAddr) -> u64 {
        l.0
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        assert_eq!(Addr::new(0).line(64), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(64), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(64), LineAddr::new(1));
        assert_eq!(Addr::new(0xffff).line(64), LineAddr::new(0x3ff));
    }

    #[test]
    fn offset_within_line() {
        assert_eq!(Addr::new(0x1043).offset(64), 3);
        assert_eq!(Addr::new(0x1040).offset(64), 0);
        assert_eq!(Addr::new(0x107f).offset(64), 63);
    }

    #[test]
    fn line_round_trip() {
        let a = Addr::new(0xdead_bec0);
        let line = a.line(64);
        let base = line.base_addr(64);
        assert!(base <= a);
        assert!(a.raw() - base.raw() < 64);
    }

    #[test]
    fn next_line_is_sequential() {
        let line = Addr::new(0x1000).line(64);
        assert_eq!(line.next().base_addr(64), Addr::new(0x1040));
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(100);
        assert_eq!(a + 28, Addr::new(128));
        assert_eq!(a - 100, Addr::new(0));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0xabc).to_string(), "0xabc");
        assert_eq!(format!("{:x}", LineAddr::new(0xff)), "ff");
    }
}
