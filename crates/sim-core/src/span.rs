//! Hierarchical self-profiling spans, sibling to [`crate::probe`].
//!
//! The probe layer answers *what happened* (counters, histograms, hot
//! sets); this layer answers *where the time went*. Instrumented code
//! opens a [`SpanGuard`] with [`enter`] around a named phase
//! (`arena_materialize`, `replay_block`, `probe_flush`, …) and the
//! guard records start/duration when it drops. Spans nest: each span
//! carries the id of the enclosing open span, so a scope's buffer
//! reconstructs the phase tree exactly.
//!
//! Three properties shape the design:
//!
//! * **Disarmed cost is one relaxed atomic load.** [`enter`] and
//!   [`add_events`] check [`active`] and return immediately when the
//!   layer is off; the recording path is `#[cold]` and out of line.
//!   The `substrate/span_disarmed` vs `span_null` bench pair holds
//!   this, mirroring the probe benches.
//! * **No wallclock reads in this crate.** The layer takes a
//!   nanosecond clock (`fn() -> u64`) at [`arm`] time; the harness
//!   injects one backed by `experiments::telemetry` (the workspace's
//!   single sanctioned wallclock site), or a constant-zero logical
//!   clock for determinism tests.
//! * **Structure and ordering are thread-count invariant.** Spans are
//!   buffered per *logical scope* (sweep / figure / cell / subsystem),
//!   not per OS thread: [`scope`] installs a fresh thread-local
//!   buffer, saving and restoring the enclosing one, and flushes a
//!   [`ScopeRecord`] to a global store when the scope closes cleanly.
//!   [`disarm`] drains the store sorted by `(kind, target, label,
//!   root name)`, so the same work produces the same record sequence
//!   at any `--threads`. Only start/duration (and the worker id) vary
//!   between runs; a zero clock makes whole streams byte-identical.
//!
//! A scope that unwinds (a fault-injected or real panic) discards its
//! partial buffer: retried cells therefore contribute exactly one
//! scope — the attempt that completed — and degraded cells none.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

/// A nanosecond clock injected at [`arm`] time. The span layer never
/// reads wallclock itself (the simlint `wallclock` rule confines
/// `Instant` to `experiments::telemetry`).
pub type Clock = fn() -> u64;

/// Registered span-name prefixes, one per instrumented component.
/// Every name passed to [`enter`] or [`scope`] must start with one of
/// these (the simlint `span-name` rule enforces it at call sites).
/// The definition lives in the canonical contract registry
/// ([`crate::registry::SPAN_NAME_PREFIXES`]); this is the same list.
pub use crate::registry::SPAN_NAME_PREFIXES as NAME_PREFIXES;

/// Returns whether `name` starts with a registered component prefix
/// (see [`NAME_PREFIXES`]).
#[must_use]
pub fn name_registered(name: &str) -> bool {
    crate::registry::span_name_registered(name)
}

const OFF: u8 = 0;
const COLLECT: u8 = 1;
const DISCARD: u8 = 2;

static ARMED: AtomicU8 = AtomicU8::new(OFF);
static CLOCK: Mutex<Option<Clock>> = Mutex::new(None);
static STORE: Mutex<Vec<ScopeRecord>> = Mutex::new(Vec::new());

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    static WORKER: Cell<u32> = const { Cell::new(0) };
}

/// Which level of the sweep hierarchy a scope belongs to. The
/// ordering is the drain ordering: sweep first, then figures, cells,
/// and finally shared-subsystem scopes (arena materializations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScopeKind {
    /// The whole `repro` invocation.
    Sweep,
    /// One figure/table driver.
    Figure,
    /// One (configuration × workload) cell.
    Cell,
    /// A shared subsystem doing work on behalf of whichever cell got
    /// there first (e.g. a trace-arena materialization).
    Subsystem,
}

impl ScopeKind {
    /// The lowercase wire name used in `trace-repro/1` records.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            ScopeKind::Sweep => "sweep",
            ScopeKind::Figure => "figure",
            ScopeKind::Cell => "cell",
            ScopeKind::Subsystem => "subsystem",
        }
    }
}

/// One recorded span: a named phase with its position in the scope's
/// phase tree. Ids are assigned in `enter` order starting at 1;
/// `parent == 0` marks the scope's root span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The registered static name (e.g. `"replay_block"`).
    pub name: &'static str,
    /// 1-based pre-order id within the owning scope.
    pub id: u32,
    /// Id of the enclosing open span, or 0 for the scope root.
    pub parent: u32,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// Clock reading at `enter`.
    pub start_ns: u64,
    /// Clock delta between `enter` and guard drop (saturating).
    pub dur_ns: u64,
    /// Simulated events attributed to this span via [`add_events`].
    pub events: u64,
}

/// One flushed scope: the spans a logical unit of work recorded,
/// regardless of which OS thread ran it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeRecord {
    /// Hierarchy level.
    pub kind: ScopeKind,
    /// The owning target (figure name, or a subsystem tag).
    pub target: String,
    /// Scope label (cell label, arena key, …); empty when the kind
    /// needs none.
    pub label: String,
    /// Scheduler worker id that closed the scope (0 = the calling
    /// thread). Nondeterministic across runs; zeroed in logical mode.
    pub worker: u32,
    /// The recorded spans, in `enter` order. `spans[0]` is the scope
    /// root.
    pub spans: Vec<SpanRecord>,
}

struct Collector {
    kind: ScopeKind,
    target: String,
    label: String,
    clock: Clock,
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
}

impl Collector {
    fn open(&mut self, name: &'static str) {
        let id = u32::try_from(self.spans.len())
            .unwrap_or(u32::MAX)
            .saturating_add(1);
        let parent = self.stack.last().copied().unwrap_or(0);
        let depth = u32::try_from(self.stack.len()).unwrap_or(u32::MAX);
        self.spans.push(SpanRecord {
            name,
            id,
            parent,
            depth,
            start_ns: (self.clock)(),
            dur_ns: 0,
            events: 0,
        });
        self.stack.push(id);
    }

    fn close(&mut self) {
        if let Some(id) = self.stack.pop() {
            let now = (self.clock)();
            if let Some(span) = self.spans.get_mut(id as usize - 1) {
                span.dur_ns = now.saturating_sub(span.start_ns);
            }
        }
    }

    fn close_all(&mut self) {
        while !self.stack.is_empty() {
            self.close();
        }
    }
}

fn zero_clock() -> u64 {
    0
}

fn current_clock() -> Clock {
    CLOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .unwrap_or(zero_clock)
}

/// Returns whether the span layer is armed. This is the only cost
/// instrumented code pays when tracing is off: one relaxed atomic
/// load.
#[inline]
#[must_use]
pub fn active() -> bool {
    ARMED.load(Ordering::Relaxed) != OFF
}

/// Arms the layer: spans record through `clock` and scopes flush to
/// the global store until [`disarm`]. Clears any records left from a
/// previous arming.
pub fn arm(clock: Clock) {
    *CLOCK.lock().unwrap_or_else(PoisonError::into_inner) = Some(clock);
    STORE.lock().unwrap_or_else(PoisonError::into_inner).clear();
    ARMED.store(COLLECT, Ordering::Relaxed);
}

/// Arms the layer in discard mode: the full recording path runs but
/// closed scopes are dropped instead of stored. This is the
/// `span_null` bench configuration — it prices dispatch + record cost
/// without accumulating memory.
pub fn arm_discard(clock: Clock) {
    *CLOCK.lock().unwrap_or_else(PoisonError::into_inner) = Some(clock);
    STORE.lock().unwrap_or_else(PoisonError::into_inner).clear();
    ARMED.store(DISCARD, Ordering::Relaxed);
}

/// Disarms the layer and drains every flushed scope, sorted by
/// `(kind, target, label, root span name)` so the sequence is
/// identical at any thread count.
pub fn disarm() -> Vec<ScopeRecord> {
    ARMED.store(OFF, Ordering::Relaxed);
    let mut records = std::mem::take(&mut *STORE.lock().unwrap_or_else(PoisonError::into_inner));
    records.sort_by(|a, b| {
        let ka = (a.kind, &a.target, &a.label, root_name(a));
        let kb = (b.kind, &b.target, &b.label, root_name(b));
        ka.cmp(&kb)
    });
    records
}

fn root_name(rec: &ScopeRecord) -> &'static str {
    rec.spans.first().map_or("", |s| s.name)
}

/// Tags the current OS thread with a scheduler worker id (0 = the
/// calling/main thread; [`crate::parallel`] numbers spawned workers
/// from 1). Scopes closed on this thread carry the id.
pub fn set_worker(id: u32) {
    WORKER.with(|w| w.set(id));
}

/// The scheduler worker id of the current thread (see
/// [`set_worker`]).
#[must_use]
pub fn worker() -> u32 {
    WORKER.with(Cell::get)
}

/// Reads the armed clock, or `None` when tracing is off. The
/// scheduler uses this for busy-time tallies so it never pays a clock
/// read in untraced runs.
#[must_use]
pub fn clock_now() -> Option<u64> {
    if !active() {
        return None;
    }
    Some(current_clock()())
}

/// Open-span handle returned by [`enter`]; the span's duration is
/// taken when it drops.
#[must_use = "a span records its duration when the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                col.close();
            }
        });
    }
}

/// Opens a span named `name` inside the current scope. When the layer
/// is disarmed — or the thread has no scope installed — this is a
/// relaxed load plus an inert guard. `name` must be a static string
/// literal with a registered prefix (see [`NAME_PREFIXES`]; the
/// simlint `span-name` rule checks call sites).
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !active() {
        return SpanGuard { armed: false };
    }
    enter_slow(name)
}

#[cold]
fn enter_slow(name: &'static str) -> SpanGuard {
    COLLECTOR.with(|c| match c.borrow_mut().as_mut() {
        Some(col) => {
            col.open(name);
            SpanGuard { armed: true }
        }
        None => SpanGuard { armed: false },
    })
}

/// Attributes `n` simulated events to the innermost open span (no-op
/// when disarmed or outside a scope).
#[inline]
pub fn add_events(n: u64) {
    if !active() {
        return;
    }
    add_events_slow(n);
}

#[cold]
fn add_events_slow(n: u64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            if let Some(&id) = col.stack.last() {
                if let Some(span) = col.spans.get_mut(id as usize - 1) {
                    span.events += n;
                }
            }
        }
    });
}

/// Runs `f` inside a fresh span scope rooted at a span named `name`.
///
/// The enclosing scope (if any) is saved and restored, so nested
/// scopes partition spans instead of interleaving them — a cell
/// running inline at `--threads 1` buffers exactly what it would
/// buffer on a worker thread, which is what makes span structure
/// thread-count invariant. `label` is only evaluated when the layer
/// is armed. If `f` unwinds, the partial scope is discarded.
pub fn scope<R>(
    kind: ScopeKind,
    name: &'static str,
    target: &str,
    label: impl FnOnce() -> String,
    f: impl FnOnce() -> R,
) -> R {
    if !active() {
        return f();
    }
    scope_slow(kind, name, target.to_owned(), label(), f)
}

#[cold]
fn scope_slow<R>(
    kind: ScopeKind,
    name: &'static str,
    target: String,
    label: String,
    f: impl FnOnce() -> R,
) -> R {
    let mut collector = Collector {
        kind,
        target,
        label,
        clock: current_clock(),
        spans: Vec::new(),
        stack: Vec::new(),
    };
    collector.open(name);
    let prev = COLLECTOR.with(|c| c.borrow_mut().replace(collector));

    struct Guard {
        prev: Option<Collector>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            let finished = COLLECTOR.with(|c| c.borrow_mut().take());
            COLLECTOR.with(|c| *c.borrow_mut() = self.prev.take());
            if std::thread::panicking() {
                return; // discard the partial scope; a retry re-records it
            }
            let Some(mut col) = finished else { return };
            col.close_all();
            if ARMED.load(Ordering::Relaxed) != COLLECT {
                return;
            }
            let record = ScopeRecord {
                kind: col.kind,
                target: std::mem::take(&mut col.target),
                label: std::mem::take(&mut col.label),
                worker: worker(),
                spans: std::mem::take(&mut col.spans),
            };
            STORE
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(record);
        }
    }

    let _guard = Guard { prev };
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_clock() -> u64 {
        // Deterministic strictly-increasing fake time; good enough to
        // see nonzero durations without touching wallclock.
        use std::sync::atomic::AtomicU64;
        static TICKS: AtomicU64 = AtomicU64::new(0);
        TICKS.fetch_add(10, Ordering::Relaxed)
    }

    // One #[test] because the armed state, clock, and store are
    // process-global and tests in one binary run concurrently.
    #[test]
    fn span_layer_end_to_end() {
        // Disarmed: everything is inert.
        assert!(!active());
        {
            let _g = hold_disarmed();
            add_events(5);
        }
        assert!(disarm().is_empty());

        // Armed: scopes nest, spans tree up, events attach.
        arm(fake_clock);
        assert!(active());
        let out = scope(
            ScopeKind::Cell,
            "cell_run",
            "fig1",
            || "16KB/demo".to_owned(),
            || {
                {
                    let _g = enter("replay_block");
                    add_events(100);
                    let _inner = enter("probe_flush");
                }
                // A nested scope must not inherit or pollute ours.
                scope(
                    ScopeKind::Subsystem,
                    "arena_materialize",
                    "arena",
                    || "demo/1/100".to_owned(),
                    || {
                        let _g = enter("fault_backoff");
                    },
                );
                42
            },
        );
        assert_eq!(out, 42);
        let records = disarm();
        assert_eq!(records.len(), 2);
        // Drain order: Cell before Subsystem.
        assert_eq!(records[0].kind, ScopeKind::Cell);
        assert_eq!(records[0].target, "fig1");
        assert_eq!(records[0].label, "16KB/demo");
        let spans = &records[0].spans;
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["cell_run", "replay_block", "probe_flush"]
        );
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[2].parent, spans[1].id);
        assert_eq!(spans[2].depth, 2);
        assert_eq!(spans[1].events, 100);
        assert!(spans.iter().all(|s| s.dur_ns > 0));
        assert_eq!(records[1].kind, ScopeKind::Subsystem);
        assert_eq!(
            records[1].spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["arena_materialize", "fault_backoff"]
        );

        // Spans outside any scope are dropped, not misfiled.
        arm(fake_clock);
        {
            let _g = enter("replay_events");
            add_events(1);
        }
        assert!(disarm().is_empty());

        // A panicking scope discards its partial buffer.
        arm(fake_clock);
        let _ = std::panic::catch_unwind(|| {
            scope(ScopeKind::Cell, "cell_run", "fig1", String::new, || {
                let _g = enter("replay_block");
                panic!("injected");
            })
        });
        scope(ScopeKind::Cell, "cell_run", "fig2", String::new, || ());
        let records = disarm();
        assert_eq!(records.len(), 1, "panicked scope must be discarded");
        assert_eq!(records[0].target, "fig2");

        // Discard mode records nothing but still runs the full path.
        arm_discard(zero_clock);
        scope(ScopeKind::Cell, "cell_run", "fig1", String::new, || {
            let _g = enter("replay_block");
        });
        assert!(disarm().is_empty());

        // Worker tagging.
        set_worker(3);
        assert_eq!(worker(), 3);
        set_worker(0);

        // Name registry. The partitioned-replay pipeline's span names
        // are pinned here so a prefix change cannot silently
        // unregister them: `arena_partition` (decompose-time counting
        // sort), `replay_partitioned` (per-set-run replay), and
        // `replay_stream` (chunked generator replay).
        assert!(name_registered("replay_block"));
        assert!(name_registered("arena_partition"));
        assert!(name_registered("replay_partitioned"));
        assert!(name_registered("replay_stream"));
        assert!(!name_registered("my_phase"));
    }

    fn hold_disarmed() -> SpanGuard {
        enter("sweep_noop")
    }
}
