//! Deterministic fork/join parallelism for independent simulation
//! cells.
//!
//! Every experiment in this workspace iterates *independent* work
//! items — (workload, policy) cells, tag-width sweep points, whole
//! figures — where each item owns its simulator state and RNG, so
//! fanning items across cores cannot change any result. [`par_map`]
//! is the one scheduler for all of them: an **atomic-index chunked
//! scheduler** on scoped threads. A shared atomic counter hands out
//! chunks of consecutive item indices; workers claim a chunk with one
//! `fetch_add`, process it, and come back for more. Compared with a
//! `Mutex<Vec>` work queue this removes the contended lock from the
//! steady state (one atomic RMW per *chunk*, not one lock round-trip
//! per *item*) while still load-balancing uneven items.
//!
//! Results are returned **in input order** regardless of which thread
//! computed what, so callers observe exactly the serial semantics —
//! the basis for the repo's byte-identical serial-vs-parallel
//! guarantee.
//!
//! # Panic isolation and retry
//!
//! A panicking cell no longer wedges or kills the sweep. Each item
//! runs under [`std::panic::catch_unwind`]; a panic burns one
//! *attempt* and — when a [`crate::fault`] plan is installed — the
//! item is retried (with the plan's deterministic backoff) up to the
//! plan's budget. Items that exhaust the budget come back as
//! [`CellFailure`]s from [`try_par_map`], with every *other* item's
//! result intact and computed exactly once. The infallible [`par_map`]
//! keeps its historical contract: any failed cell panics on the
//! caller's thread with the cell's own message. Without an installed
//! fault plan the budget is one attempt, so a real panic on a plain
//! run still fails fast.
//!
//! Retry sits *around* the cell closure, so a retried cell re-runs
//! from scratch — correct here because cells are pure functions of
//! their item (the same property that makes parallelism safe), and
//! injected worker faults fire *before* the closure so transient
//! chaos never double-runs a cell body.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned — globally with [`set_max_threads`] (or the
//! `SIM_THREADS` environment variable read at first use), or per call
//! with [`par_map_threads`]. Pinning to 1 runs inline on the caller's
//! thread with no spawns at all.
//!
//! # Examples
//!
//! ```
//! let squares = sim_core::parallel::par_map(vec![1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::{fault, span};

/// Global worker-count override: 0 = automatic.
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);
/// Set once from the `SIM_THREADS` environment variable.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Pins the number of worker threads every subsequent [`par_map`]
/// uses. `0` restores the default (all available cores). Intended for
/// harnesses (`repro --threads N`) and determinism tests; per-call
/// control is [`par_map_threads`].
pub fn set_max_threads(threads: usize) {
    MAX_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count [`par_map`] will use for `n` items: the explicit
/// override ([`set_max_threads`] or `SIM_THREADS`), else available
/// parallelism, capped at `n`.
#[must_use]
pub fn effective_threads(n: usize) -> usize {
    let pinned = match MAX_THREADS.load(Ordering::Relaxed) {
        0 => *ENV_THREADS.get_or_init(|| {
            std::env::var("SIM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&t| t > 0)
        }),
        t => Some(t),
    };
    let threads = pinned.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    });
    threads.clamp(1, n.max(1))
}

/// One cell that kept failing until its retry budget ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The item's input-order index.
    pub index: usize,
    /// Attempts made (0 means the worker thread itself died and the
    /// cell never got to run).
    pub attempts: u32,
    /// Whether any failed attempt was an *injected* fault (as opposed
    /// to a real panic in the cell body).
    pub injected: bool,
    /// The final attempt's panic message.
    pub message: String,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} failed after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for CellFailure {}

/// Per-worker scheduler tallies, accumulated across [`par_map`] calls
/// while the span layer is armed (untraced runs pay nothing). Worker
/// 0 is the calling thread (the serial/inline path); spawned workers
/// are numbered from 1 in spawn order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerTally {
    /// Cells this worker completed.
    pub cells: u64,
    /// Chunks claimed from the shared counter — each claim after a
    /// worker's first is work stolen from the static split.
    pub chunks: u64,
    /// Nanoseconds spent inside cell bodies, on the armed span clock.
    pub busy_ns: u64,
}

/// Monotonic worker numbering across every spawn since the last
/// [`reset_worker_tallies`], so concurrent/nested `par_map` calls
/// never share a lane id.
static NEXT_WORKER: AtomicU32 = AtomicU32::new(0);
static TALLIES: Mutex<BTreeMap<u32, WorkerTally>> = Mutex::new(BTreeMap::new());

/// Clears the per-worker tallies and restarts worker numbering. The
/// harness calls this right after arming the span layer so a trace's
/// lanes start at worker 1.
pub fn reset_worker_tallies() {
    NEXT_WORKER.store(0, Ordering::Relaxed);
    TALLIES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Snapshot of the per-worker tallies, sorted by worker id.
#[must_use]
pub fn worker_tallies() -> Vec<(u32, WorkerTally)> {
    TALLIES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&w, &t)| (w, t))
        .collect()
}

fn record_tally(worker: u32, cells: u64, chunks: u64, busy_ns: u64) {
    let mut map = TALLIES.lock().unwrap_or_else(PoisonError::into_inner);
    let t = map.entry(worker).or_default();
    t.cells += cells;
    t.chunks += chunks;
    t.busy_ns += busy_ns;
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(fp) = payload.downcast_ref::<fault::FaultPanic>() {
        fp.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

/// Runs one cell through the retry loop: catch a panic, back off,
/// re-run, and give up with a [`CellFailure`] once the installed fault
/// plan's budget (or the single fail-fast attempt, when no plan is
/// installed) is spent. Injected worker faults trip *before* `f`.
fn run_item<T, R, F>(index: usize, item: &T, f: &F) -> Result<R, CellFailure>
where
    T: Clone,
    F: Fn(T) -> R,
{
    let budget = fault::retry_attempts();
    let mut pin = None;
    let mut injected = false;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fault::worker_trip(&mut pin, attempt);
            f(item.clone())
        }));
        match outcome {
            Ok(r) => return Ok(r),
            Err(payload) => {
                injected |= payload.is::<fault::FaultPanic>();
                if attempt >= budget {
                    return Err(CellFailure {
                        index,
                        attempts: attempt,
                        injected,
                        message: panic_message(payload.as_ref()),
                    });
                }
                fault::backoff(attempt);
            }
        }
    }
}

/// Maps `f` over `items` on scoped worker threads, preserving input
/// order. Uses the global thread setting (see [`set_max_threads`]).
///
/// # Panics
///
/// Panics if any cell fails past its retry budget (see
/// [`try_par_map`] for the recovering variant).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Clone,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    par_map_threads(threads, items, f)
}

/// [`par_map`] with an explicit worker count. `threads <= 1` runs
/// serially on the calling thread (no spawns), which is the reference
/// order every parallel run must reproduce bit-for-bit.
///
/// # Panics
///
/// Panics if any cell fails past its retry budget.
pub fn par_map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Clone,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    try_par_map_threads(threads, items, f)
        .into_iter()
        .map(|cell| match cell {
            Ok(r) => r,
            Err(failure) => panic!("{failure}"),
        })
        .collect()
}

/// [`try_par_map_threads`] with the global thread setting.
pub fn try_par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, CellFailure>>
where
    T: Send + Clone,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    try_par_map_threads(threads, items, f)
}

/// The recovering scheduler: maps `f` over `items` in input order,
/// isolating panics per cell and retrying under the installed
/// [`crate::fault`] plan's budget. Every element of the returned `Vec`
/// is either the cell's result or the [`CellFailure`] describing why
/// it was given up — a poisoned cell never wedges the run, and the
/// surviving cells each execute (successfully) exactly once.
pub fn try_par_map_threads<T, R, F>(
    threads: usize,
    items: Vec<T>,
    f: F,
) -> Vec<Result<R, CellFailure>>
where
    T: Send + Clone,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || threads <= 1 {
        let start = span::clock_now();
        let out: Vec<Result<R, CellFailure>> = items
            .iter()
            .enumerate()
            .map(|(idx, item)| run_item(idx, item, &f))
            .collect();
        if let Some(start) = start {
            let busy = span::clock_now().unwrap_or(start).saturating_sub(start);
            record_tally(span::worker(), n as u64, 1, busy);
        }
        return out;
    }
    let threads = threads.min(n);

    // Chunks of consecutive indices, sized so each worker sees several
    // chunks (load balancing) without making the atomic counter hot.
    let chunk = (n / (threads * 4)).max(1);
    let mut remaining: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let mut chunks: Vec<Mutex<Vec<(usize, T)>>> = Vec::with_capacity(n.div_ceil(chunk));
    while !remaining.is_empty() {
        let rest = remaining.split_off(chunk.min(remaining.len()));
        chunks.push(Mutex::new(remaining));
        remaining = rest;
    }
    let next_chunk = AtomicUsize::new(0);

    let f = &f;
    let chunks = &chunks;
    let next_chunk = &next_chunk;
    let mut slots: Vec<Option<Result<R, CellFailure>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let worker = NEXT_WORKER.fetch_add(1, Ordering::Relaxed) + 1;
                    span::set_worker(worker);
                    let mut out = Vec::new();
                    let mut tally = WorkerTally::default();
                    loop {
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(c) else { break };
                        tally.chunks += 1;
                        // Uncontended by construction: each chunk index
                        // is claimed by exactly one worker.
                        let work = std::mem::take(&mut *chunk.lock().expect("chunk lock"));
                        for (idx, item) in work {
                            let start = span::clock_now();
                            out.push((idx, run_item(idx, &item, f)));
                            tally.cells += 1;
                            if let Some(start) = start {
                                tally.busy_ns +=
                                    span::clock_now().unwrap_or(start).saturating_sub(start);
                            }
                        }
                    }
                    if span::active() {
                        record_tally(worker, tally.cells, tally.chunks, tally.busy_ns);
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            // A worker can only die to a panic that escaped the
            // per-cell catch_unwind (e.g. abort-adjacent foreign
            // panics). Losing one worker must not wedge the others'
            // results: its unfinished cells surface below as failures.
            if let Ok(pairs) = h.join() {
                for (idx, r) in pairs {
                    slots[idx] = Some(r);
                }
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or_else(|| {
                Err(CellFailure {
                    index,
                    attempts: 0,
                    injected: false,
                    message: "worker thread died before running this cell".to_owned(),
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_matches_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map_threads(threads, items.clone(), |x| x * 3 + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, |x| x).is_empty());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_threads(32, vec![1, 2, 3], |x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Items with wildly different costs exercise chunk stealing.
        let out = par_map_threads(4, (0u64..97).collect(), |x| {
            let mut acc = x;
            for _ in 0..(x % 13) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn effective_threads_respects_item_count() {
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        assert!(effective_threads(1000) >= 1);
    }

    #[test]
    fn try_variant_isolates_a_real_panic() {
        // No fault plan installed in unit tests → one attempt, fail
        // fast, but the other cells must still complete and stay
        // ordered. (Fault-plan scenarios live in tests/panic_recovery
        // because the plan is process-global.)
        for threads in [1, 4] {
            let out = try_par_map_threads(threads, (0u32..8).collect(), |x| {
                assert!(x != 5, "boom at five");
                x * 10
            });
            for (i, cell) in out.iter().enumerate() {
                if i == 5 {
                    let failure = cell.as_ref().expect_err("cell 5 must fail");
                    assert_eq!(failure.index, 5);
                    assert_eq!(failure.attempts, 1);
                    assert!(!failure.injected);
                    assert!(failure.message.contains("boom at five"));
                } else {
                    assert_eq!(cell.as_ref().copied(), Ok(i as u32 * 10));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom at three")]
    fn infallible_variant_still_panics_on_failure() {
        let _ = par_map_threads(2, (0u32..6).collect(), |x| {
            assert!(x != 3, "boom at three");
            x
        });
    }
}
