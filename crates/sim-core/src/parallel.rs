//! Deterministic fork/join parallelism for independent simulation
//! cells.
//!
//! Every experiment in this workspace iterates *independent* work
//! items — (workload, policy) cells, tag-width sweep points, whole
//! figures — where each item owns its simulator state and RNG, so
//! fanning items across cores cannot change any result. [`par_map`]
//! is the one scheduler for all of them: an **atomic-index chunked
//! scheduler** on scoped threads. A shared atomic counter hands out
//! chunks of consecutive item indices; workers claim a chunk with one
//! `fetch_add`, process it, and come back for more. Compared with a
//! `Mutex<Vec>` work queue this removes the contended lock from the
//! steady state (one atomic RMW per *chunk*, not one lock round-trip
//! per *item*) while still load-balancing uneven items.
//!
//! Results are returned **in input order** regardless of which thread
//! computed what, so callers observe exactly the serial semantics —
//! the basis for the repo's byte-identical serial-vs-parallel
//! guarantee.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned — globally with [`set_max_threads`] (or the
//! `SIM_THREADS` environment variable read at first use), or per call
//! with [`par_map_threads`]. Pinning to 1 runs inline on the caller's
//! thread with no spawns at all.
//!
//! # Examples
//!
//! ```
//! let squares = sim_core::parallel::par_map(vec![1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Global worker-count override: 0 = automatic.
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);
/// Set once from the `SIM_THREADS` environment variable.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Pins the number of worker threads every subsequent [`par_map`]
/// uses. `0` restores the default (all available cores). Intended for
/// harnesses (`repro --threads N`) and determinism tests; per-call
/// control is [`par_map_threads`].
pub fn set_max_threads(threads: usize) {
    MAX_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count [`par_map`] will use for `n` items: the explicit
/// override ([`set_max_threads`] or `SIM_THREADS`), else available
/// parallelism, capped at `n`.
#[must_use]
pub fn effective_threads(n: usize) -> usize {
    let pinned = match MAX_THREADS.load(Ordering::Relaxed) {
        0 => *ENV_THREADS.get_or_init(|| {
            std::env::var("SIM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&t| t > 0)
        }),
        t => Some(t),
    };
    let threads = pinned.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    });
    threads.clamp(1, n.max(1))
}

/// Maps `f` over `items` on scoped worker threads, preserving input
/// order. Uses the global thread setting (see [`set_max_threads`]).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    par_map_threads(threads, items, f)
}

/// [`par_map`] with an explicit worker count. `threads <= 1` runs
/// serially on the calling thread (no spawns), which is the reference
/// order every parallel run must reproduce bit-for-bit.
pub fn par_map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);

    // Chunks of consecutive indices, sized so each worker sees several
    // chunks (load balancing) without making the atomic counter hot.
    let chunk = (n / (threads * 4)).max(1);
    let mut remaining: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let mut chunks: Vec<Mutex<Vec<(usize, T)>>> = Vec::with_capacity(n.div_ceil(chunk));
    while !remaining.is_empty() {
        let rest = remaining.split_off(chunk.min(remaining.len()));
        chunks.push(Mutex::new(remaining));
        remaining = rest;
    }
    let next_chunk = AtomicUsize::new(0);

    let f = &f;
    let chunks = &chunks;
    let next_chunk = &next_chunk;
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(c) else { break };
                        // Uncontended by construction: each chunk index
                        // is claimed by exactly one worker.
                        let work = std::mem::take(&mut *chunk.lock().expect("chunk lock"));
                        for (idx, item) in work {
                            out.push((idx, f(item)));
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (idx, r) in h.join().expect("worker panicked") {
                slots[idx] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_matches_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map_threads(threads, items.clone(), |x| x * 3 + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, |x| x).is_empty());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_threads(32, vec![1, 2, 3], |x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Items with wildly different costs exercise chunk stealing.
        let out = par_map_threads(4, (0u64..97).collect(), |x| {
            let mut acc = x;
            for _ in 0..(x % 13) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn effective_threads_respects_item_count() {
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        assert!(effective_threads(1000) >= 1);
    }
}
