//! Scheduler panic-recovery scenarios: a worker panic mid-sweep must
//! never wedge the run, double-run a surviving cell, or go
//! unreported.
//!
//! These scenarios install process-global fault plans, so every test
//! takes the same mutex — the unit tests inside `sim_core::fault` live
//! in a different test binary (process) and cannot race these.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, PoisonError};

use sim_core::fault::{self, FaultPlan, FaultSite, RetryPolicy, MAX_RECOVERABLE_BURST};
use sim_core::parallel::{par_map_threads, try_par_map_threads};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Zero-sleep retries keep the chaos scenarios fast; the backoff
/// *schedule* itself is pinned by unit tests on `backoff_delay`.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        base_delay_micros: 0,
        max_delay_micros: 0,
    }
}

fn with_plan<R>(plan: Option<FaultPlan>, f: impl FnOnce() -> R) -> R {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    match plan {
        Some(p) => fault::install(p),
        None => fault::clear(),
    }
    fault::silence_injected_panics();
    let out = f();
    fault::clear();
    out
}

#[test]
fn transient_worker_faults_recover_with_each_cell_run_exactly_once() {
    let plan = FaultPlan::new(41, 1.0)
        .with_sites(&[FaultSite::WorkerBody])
        .with_retry(fast_retry());
    with_plan(Some(plan), || {
        for threads in [1, 4] {
            let n = 32usize;
            let runs: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            let runs_ref = &runs;
            let out = try_par_map_threads(threads, (0..n).collect(), |i| {
                runs_ref[i].fetch_add(1, Ordering::Relaxed);
                i * 10
            });
            assert_eq!(out.len(), n);
            for (i, cell) in out.iter().enumerate() {
                assert_eq!(
                    cell.as_ref().copied(),
                    Ok(i * 10),
                    "threads={threads}: every fault at rate 1.0 must still recover"
                );
                assert_eq!(
                    runs_ref[i].load(Ordering::Relaxed),
                    1,
                    "threads={threads} cell {i}: injected trips fire before the body, \
                     so a recovered cell's body runs exactly once"
                );
            }
            let stats = fault::stats();
            assert!(stats.injected > 0, "rate 1.0 must inject");
            assert_eq!(stats.exhausted, 0, "transient bursts never exhaust");
        }
    });
}

#[test]
fn persistent_worker_faults_degrade_only_their_own_cells() {
    let plan = FaultPlan::new(7, 0.5)
        .persistent()
        .with_sites(&[FaultSite::WorkerBody])
        .with_retry(fast_retry());
    with_plan(Some(plan), || {
        let n = 48usize;
        let runs: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let runs_ref = &runs;
        let out = try_par_map_threads(4, (0..n).collect(), |i| {
            runs_ref[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        let mut failed = 0usize;
        for (i, cell) in out.iter().enumerate() {
            match cell {
                Ok(v) => {
                    assert_eq!(*v, i, "results stay in input order");
                    assert_eq!(
                        runs_ref[i].load(Ordering::Relaxed),
                        1,
                        "cell {i}: surviving cells run exactly once, no double-count"
                    );
                }
                Err(failure) => {
                    failed += 1;
                    assert_eq!(failure.index, i);
                    assert!(failure.injected, "only injected faults are active");
                    assert_eq!(
                        failure.attempts,
                        fast_retry().max_attempts,
                        "a persistent fault must burn the whole retry budget"
                    );
                    assert_eq!(
                        runs_ref[i].load(Ordering::Relaxed),
                        0,
                        "cell {i}: the trip fires before the body every attempt"
                    );
                    assert!(failure.message.contains("injected worker fault"));
                }
            }
        }
        // Rate 0.5 over 48 cells: both populations must exist, or the
        // scenario isn't exercising anything.
        assert!(failed > 0, "some cells must degrade at rate 0.5");
        assert!(failed < n, "some cells must survive at rate 0.5");
        assert_eq!(fault::stats().exhausted as usize, failed);
    });
}

#[test]
fn real_panic_mid_sweep_is_retried_reported_and_isolated() {
    // A real (non-injected) deterministic panic under an installed
    // transient plan: the scheduler retries it through the budget,
    // reports it as a non-injected failure, and completes every other
    // cell exactly once.
    let plan = FaultPlan::new(3, 0.0).with_retry(fast_retry());
    with_plan(Some(plan), || {
        let n = 16usize;
        let poisoned = 11usize;
        let runs: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let runs_ref = &runs;
        let out = try_par_map_threads(4, (0..n).collect(), |i| {
            runs_ref[i].fetch_add(1, Ordering::Relaxed);
            assert!(i != poisoned, "poisoned cell");
            i
        });
        for (i, cell) in out.iter().enumerate() {
            if i == poisoned {
                let failure = cell.as_ref().expect_err("poisoned cell must fail");
                assert!(!failure.injected);
                assert_eq!(failure.attempts, fast_retry().max_attempts);
                assert!(failure.message.contains("poisoned cell"));
                assert_eq!(
                    runs_ref[i].load(Ordering::Relaxed),
                    fast_retry().max_attempts,
                    "a real panic burns one body run per attempt"
                );
            } else {
                assert_eq!(cell.as_ref().copied(), Ok(i));
                assert_eq!(runs_ref[i].load(Ordering::Relaxed), 1);
            }
        }
    });
}

#[test]
fn infallible_par_map_panics_with_the_cell_message_under_a_plan() {
    let plan = FaultPlan::new(5, 1.0)
        .persistent()
        .with_sites(&[FaultSite::WorkerBody])
        .with_retry(fast_retry());
    with_plan(Some(plan), || {
        let result = std::panic::catch_unwind(|| par_map_threads(2, vec![1u32, 2, 3], |x| x));
        let payload = result.expect_err("persistent faults must surface");
        let message = payload
            .downcast_ref::<String>()
            .expect("par_map panics with a formatted message");
        assert!(message.contains("injected worker fault"), "got: {message}");
    });
}

#[test]
fn burst_cap_stays_below_every_legal_budget() {
    // The recoverability-by-construction invariant the chaos
    // differential suite leans on: a transient burst can never reach
    // the default retry budget.
    assert!(MAX_RECOVERABLE_BURST < RetryPolicy::default().max_attempts);
    assert!(MAX_RECOVERABLE_BURST < fast_retry().max_attempts);
}
