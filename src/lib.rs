//! Umbrella crate for the conflict-miss reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples,
//! integration tests, and downstream users can depend on a single
//! package:
//!
//! * [`mct`] — the Miss Classification Table (the paper's
//!   contribution);
//! * [`cache_model`] — caches, MSHRs, banks, L2 + memory, 3C oracle;
//! * [`trace_gen`] / [`workloads`] — reference streams and SPEC95
//!   analogs;
//! * [`cpu_model`] — the out-of-order timing model and baseline;
//! * [`assist_buffer`], [`victim_cache`], [`prefetcher`],
//!   [`exclusion`], [`pseudo_assoc`], [`amb`] — the cache-assist
//!   architectures;
//! * [`experiments`] — drivers that regenerate every table and figure.
//!
//! See the README for a tour and `examples/` for runnable entry
//! points.

#![forbid(unsafe_code)]

pub use amb;
pub use assist_buffer;
pub use cache_model;
pub use conflict_remap;
pub use cpu_model;
pub use exclusion;
pub use experiments;
pub use mct;
pub use prefetcher;
pub use pseudo_assoc;
pub use sim_core;
pub use trace_gen;
pub use victim_cache;
pub use workloads;
