//! Property-based tests of the core data structures' invariants,
//! driven by arbitrary reference streams.

use assist_buffer::AssistBuffer;
use cache_model::oracle::{OracleClass, ThreeCClassifier};
use cache_model::{CacheGeometry, SetAssocCache};
use mct::{ClassifyingCache, MissClass, MissClassificationTable, TagBits};
use proptest::prelude::*;
use sim_core::LineAddr;
use std::collections::HashSet;

/// A compact address space so streams exercise collisions heavily.
fn small_lines() -> impl Strategy<Value = Vec<LineAddr>> {
    prop::collection::vec((0u64..64).prop_map(LineAddr::new), 1..600)
}

proptest! {
    /// The cache never holds more lines than its capacity, never holds
    /// a line twice, and `contains` agrees with fill/evict history.
    #[test]
    fn cache_capacity_and_uniqueness(refs in small_lines()) {
        let geom = CacheGeometry::new(512, 2, 64).unwrap(); // 4 sets x 2 ways
        let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
        for (i, &line) in refs.iter().enumerate() {
            if cache.probe(line).is_none() {
                cache.fill(line, i as u32);
            }
            prop_assert!(cache.len() <= geom.num_lines());
            let mut seen = HashSet::new();
            for (l, _) in cache.iter() {
                prop_assert!(seen.insert(l), "line {l} resident twice");
            }
            prop_assert!(cache.contains(line), "line just accessed must be resident");
        }
    }

    /// LRU: after any stream, the resident lines of a set are the most
    /// recently used distinct lines mapping to it.
    #[test]
    fn lru_keeps_most_recent_per_set(refs in small_lines()) {
        let geom = CacheGeometry::new(256, 2, 64).unwrap(); // 2 sets x 2 ways
        let mut cache: SetAssocCache<()> = SetAssocCache::new(geom);
        for &line in &refs {
            if cache.probe(line).is_none() {
                cache.fill(line, ());
            }
        }
        for set in 0..geom.num_sets() {
            // Most recent distinct lines of this set, newest first.
            let mut expected = Vec::new();
            for &line in refs.iter().rev() {
                if geom.set_index(line) == set && !expected.contains(&line) {
                    expected.push(line);
                    if expected.len() == 2 {
                        break;
                    }
                }
            }
            for line in expected {
                prop_assert!(cache.contains(line), "{line} should have survived in set {set}");
            }
        }
    }

    /// The MCT classifies conflict exactly when the missing tag equals
    /// the most recently evicted tag of the set — checked against a
    /// naive reference model.
    #[test]
    fn mct_matches_reference_model(
        ops in prop::collection::vec((0usize..8, 0u64..16, prop::bool::ANY), 1..300)
    ) {
        let mut table = MissClassificationTable::new(8, TagBits::Full);
        let mut reference: [Option<u64>; 8] = [None; 8];
        for (set, tag, is_eviction) in ops {
            if is_eviction {
                table.record_eviction(set, tag);
                reference[set] = Some(tag);
            } else {
                let expected = if reference[set] == Some(tag) {
                    MissClass::Conflict
                } else {
                    MissClass::Capacity
                };
                prop_assert_eq!(table.classify(set, tag), expected);
            }
        }
    }

    /// Partial tags can only turn capacity labels into conflict labels
    /// (aliasing), never the reverse.
    #[test]
    fn partial_tags_only_add_conflicts(refs in small_lines()) {
        let geom = CacheGeometry::new(256, 1, 64).unwrap();
        let mut full = ClassifyingCache::new(geom, TagBits::Full);
        let mut partial = ClassifyingCache::new(geom, TagBits::Low(2));
        for &line in &refs {
            let f = full.access(line);
            let p = partial.access(line);
            // Hit/miss behaviour is identical (classification does not
            // change placement).
            prop_assert_eq!(f.is_hit(), p.is_hit());
            if let (Some(fm), Some(pm)) = (f.miss(), p.miss()) {
                if fm.class == MissClass::Conflict {
                    prop_assert_eq!(pm.class, MissClass::Conflict,
                        "full-tag conflict must stay conflict under partial tags");
                }
            }
        }
    }

    /// Oracle sanity: first touches are compulsory, and conflict
    /// classifications only occur for lines that were re-referenced.
    #[test]
    fn oracle_compulsory_iff_first_touch(refs in small_lines()) {
        let mut oracle = ThreeCClassifier::new(8);
        let mut seen = HashSet::new();
        for &line in &refs {
            let class = oracle.observe(line);
            let first = seen.insert(line);
            prop_assert_eq!(class == OracleClass::Compulsory, first);
        }
    }

    /// The classifying cache's hit/miss behaviour is identical to a
    /// plain cache of the same geometry: the MCT is an observer, not
    /// an actor.
    #[test]
    fn classifier_is_pure_observer(refs in small_lines()) {
        let geom = CacheGeometry::new(512, 2, 64).unwrap();
        let mut plain: SetAssocCache<()> = SetAssocCache::new(geom);
        let mut classified = ClassifyingCache::new(geom, TagBits::Full);
        for &line in &refs {
            let plain_hit = if plain.probe(line).is_some() {
                true
            } else {
                plain.fill(line, ());
                false
            };
            prop_assert_eq!(plain_hit, classified.access(line).is_hit());
        }
    }

    /// The assist buffer respects capacity and keeps exactly the most
    /// recently inserted/probed lines.
    #[test]
    fn buffer_capacity_and_recency(
        ops in prop::collection::vec((0u64..32, prop::bool::ANY), 1..300)
    ) {
        let mut buffer: AssistBuffer<u64> = AssistBuffer::new(4);
        for (raw, probe) in ops {
            let line = LineAddr::new(raw);
            if probe {
                let _ = buffer.probe(line);
            } else {
                buffer.insert(line, raw);
            }
            prop_assert!(buffer.len() <= 4);
        }
    }

    /// Conflict misses identified by the MCT would hit in a cache with
    /// one extra way warmed by the same history — the "near-miss"
    /// property that defines the paper's classification.
    #[test]
    fn mct_conflicts_are_near_misses(refs in small_lines()) {
        let geom = CacheGeometry::new(256, 1, 64).unwrap(); // 4 sets DM
        let wider = CacheGeometry::new(512, 2, 64).unwrap(); // same sets, 2-way
        let mut classified = ClassifyingCache::new(geom, TagBits::Full);
        let mut two_way: SetAssocCache<()> = SetAssocCache::new(wider);
        let mut dm_evictions = 0u64;
        let mut conflict_but_2way_miss = 0u64;
        for &line in &refs {
            let outcome = classified.access(line);
            let hit_2way = two_way.probe(line).is_some();
            if !hit_2way {
                two_way.fill(line, ());
            }
            if let Some(miss) = outcome.miss() {
                dm_evictions += 1;
                if miss.class == MissClass::Conflict && !hit_2way {
                    conflict_but_2way_miss += 1;
                }
            }
        }
        // The 2-way cache has the same set count but twice the
        // capacity and its own LRU state, so the property is not exact
        // — but violations must be rare.
        if dm_evictions > 50 {
            prop_assert!(
                conflict_but_2way_miss * 5 <= dm_evictions,
                "{conflict_but_2way_miss} of {dm_evictions} conflict labels missed in 2-way"
            );
        }
    }
}
