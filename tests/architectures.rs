//! Cross-crate integration tests: every cache-assist architecture run
//! on the real workload suite under one CPU model, with invariants
//! that must hold regardless of policy.

use amb::{AmbConfig, AmbPolicy, AmbSystem};
use cpu_model::{BaselineSystem, CpuConfig, CpuReport, MemResponse, MemorySystem, OooModel};
use exclusion::{ExclusionConfig, ExclusionPolicy, ExclusionSystem};
use prefetcher::{NextLineSystem, PrefetchConfig, RptConfig, RptSystem};
use pseudo_assoc::{PseudoAssocSystem, PseudoConfig, PseudoPolicy};
use sim_core::Cycle;
use trace_gen::TraceEvent;
use victim_cache::{VictimConfig, VictimPolicy, VictimSystem};

const EVENTS: usize = 20_000;

fn workload_trace(name: &str) -> Vec<TraceEvent> {
    let w = workloads::by_name(name).expect("workload exists");
    let mut src = w.source(1);
    (0..EVENTS).map(|_| src.next_event()).collect()
}

fn all_systems() -> Vec<Box<dyn MemorySystem>> {
    vec![
        Box::new(BaselineSystem::paper_default().unwrap()),
        Box::new(BaselineSystem::paper_two_way().unwrap()),
        Box::new(VictimSystem::paper_default(VictimConfig::new(VictimPolicy::FilterBoth)).unwrap()),
        Box::new(NextLineSystem::paper_default(PrefetchConfig::unfiltered()).unwrap()),
        Box::new(RptSystem::paper_default(RptConfig::default_config()).unwrap()),
        Box::new(
            ExclusionSystem::paper_default(ExclusionConfig::new(ExclusionPolicy::Capacity))
                .unwrap(),
        ),
        Box::new(
            PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::ConflictBit)).unwrap(),
        ),
        Box::new(AmbSystem::paper_default(AmbConfig::new(AmbPolicy::VicPreExc)).unwrap()),
    ]
}

/// Responses never travel back in time and are causally ordered with
/// the request stream, for every architecture on a messy workload.
#[test]
fn responses_are_causal_for_every_architecture() {
    let trace = workload_trace("gcc");
    for mut sys in all_systems() {
        let label = sys.label();
        let mut now = Cycle::ZERO;
        for event in &trace {
            let MemResponse { ready } = sys.access(event.access, now);
            assert!(
                ready >= now,
                "{label}: response {ready} before request {now}"
            );
            // Advance time somewhat like the CPU would.
            now = Cycle::new(now.raw() + 1).max(Cycle::new(ready.raw().saturating_sub(50)));
        }
    }
}

/// Running the same trace twice through fresh systems gives identical
/// cycle counts: the whole stack is deterministic.
#[test]
fn end_to_end_determinism() {
    let trace = workload_trace("vortex");
    let cpu = OooModel::new(CpuConfig::paper_default());
    let run = |trace: &[TraceEvent]| -> Vec<u64> {
        all_systems()
            .into_iter()
            .map(|mut sys| cpu.run(&mut sys, trace.iter().copied()).cycles)
            .collect()
    };
    assert_eq!(run(&trace), run(&trace));
}

/// Every architecture finishes the suite's hottest workload in a sane
/// cycle budget: no system may be an order of magnitude worse than the
/// plain baseline (guards against pathological stall loops).
#[test]
fn no_architecture_collapses_on_tomcatv() {
    let trace = workload_trace("tomcatv");
    let cpu = OooModel::new(CpuConfig::paper_default());
    let mut base = BaselineSystem::paper_default().unwrap();
    let base_report = cpu.run(&mut base, trace.iter().copied());
    for mut sys in all_systems() {
        let label = sys.label();
        let report = cpu.run(&mut sys, trace.iter().copied());
        assert!(
            report.cycles < base_report.cycles * 3,
            "{label}: {} cycles vs baseline {}",
            report.cycles,
            base_report.cycles
        );
    }
}

/// A 2-way cache of the same size does not lose to the direct-mapped
/// baseline on conflict-dominated workloads. (This is *not* true of
/// every workload: `li`'s cyclic pointer chase is the classic LRU
/// pathology where 2-way LRU misses a 3-line cycle 100% of the time
/// while DM keeps part of it — the simulator reproduces that too.)
#[test]
fn two_way_never_loses_to_direct_mapped_on_conflict_codes() {
    let cpu = OooModel::new(CpuConfig::paper_default());
    for w in workloads::suite().into_iter().filter(|w| w.name() != "li") {
        let trace = workload_trace(w.name());
        let mut dm = BaselineSystem::paper_default().unwrap();
        let dm_report: CpuReport = cpu.run(&mut dm, trace.iter().copied());
        let mut two = BaselineSystem::paper_two_way().unwrap();
        let _ = cpu.run(&mut two, trace.iter().copied());
        assert!(
            two.l1_stats().miss_rate() <= dm.l1_stats().miss_rate() + 0.02,
            "{}: 2-way {} vs DM {}",
            w.name(),
            two.l1_stats().miss_rate(),
            dm.l1_stats().miss_rate()
        );
        let _ = dm_report;
    }
}

/// On a suite workload, the AMB with a single policy behaves like the
/// corresponding standalone architecture in hit-rate terms.
#[test]
fn amb_single_policies_track_standalone_architectures() {
    let trace = workload_trace("swim");
    let cpu = OooModel::new(CpuConfig::paper_default());

    // Pref single vs standalone next-line (both capacity-filtered in
    // the AMB's case; swim is almost all capacity misses, so the
    // filter is a no-op).
    let mut amb = AmbSystem::paper_default(AmbConfig::new(AmbPolicy::Pref)).unwrap();
    let _ = cpu.run(&mut amb, trace.iter().copied());
    let mut standalone = NextLineSystem::paper_default(PrefetchConfig::unfiltered()).unwrap();
    let _ = cpu.run(&mut standalone, trace.iter().copied());

    let amb_cover = amb.stats().prefetch_hit_rate();
    let standalone_cover = standalone.stats().buffer_hits as f64 / amb.stats().accesses as f64;
    assert!(
        (amb_cover - standalone_cover).abs() < 0.05,
        "AMB Pref {amb_cover} vs standalone {standalone_cover}"
    );
}

/// The pseudo-associative cache's miss rate sits between direct-mapped
/// and 2-way on every suite workload where conflicts exist.
#[test]
fn pseudo_assoc_sits_between_dm_and_two_way_on_conflict_codes() {
    let cpu = OooModel::new(CpuConfig::paper_default());
    for name in ["tomcatv", "turb3d"] {
        let trace = workload_trace(name);
        let mut dm = BaselineSystem::paper_default().unwrap();
        cpu.run(&mut dm, trace.iter().copied());
        let mut two = BaselineSystem::paper_two_way().unwrap();
        cpu.run(&mut two, trace.iter().copied());
        let mut pseudo =
            PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::ConflictBit)).unwrap();
        cpu.run(&mut pseudo, trace.iter().copied());
        let (dm_mr, ps_mr, tw_mr) = (
            dm.l1_stats().miss_rate(),
            pseudo.stats().miss_rate(),
            two.l1_stats().miss_rate(),
        );
        assert!(
            ps_mr <= dm_mr + 0.01 && ps_mr >= tw_mr - 0.01,
            "{name}: dm {dm_mr:.3} pseudo {ps_mr:.3} 2way {tw_mr:.3}"
        );
    }
}

/// Store-only traffic completes without ever blocking the window:
/// cycles for a store-heavy trace are dispatch-bound for every
/// architecture.
#[test]
fn store_heavy_traffic_never_blocks() {
    let mut trace = workload_trace("compress");
    for e in &mut trace {
        e.access.kind = trace_gen::AccessKind::Store;
    }
    let cpu = OooModel::new(CpuConfig::paper_default());
    let dispatch_bound: u64 = trace.iter().map(TraceEvent::instructions).sum::<u64>() / 8 + 8;
    for mut sys in all_systems() {
        let label = sys.label();
        let report = cpu.run(&mut sys, trace.iter().copied());
        assert!(
            report.cycles <= dispatch_bound + 2,
            "{label}: stores stalled the pipeline ({} vs {dispatch_bound})",
            report.cycles
        );
    }
}
