//! Property tests over the cache-assist architectures: for *arbitrary*
//! access streams (not just the curated workloads), every system must
//! satisfy the memory-interface contract.

use amb::{AmbConfig, AmbPolicy, AmbSystem};
use cpu_model::{BaselineSystem, MemorySystem};
use exclusion::{ExclusionConfig, ExclusionPolicy, ExclusionSystem};
use prefetcher::{NextLineSystem, PrefetchConfig};
use proptest::prelude::*;
use pseudo_assoc::{PseudoAssocSystem, PseudoConfig, PseudoPolicy};
use sim_core::{Addr, Cycle};
use trace_gen::{AccessKind, MemoryAccess};
use victim_cache::{VictimConfig, VictimPolicy, VictimSystem};

/// A compact synthetic access: (line index within a small hot region,
/// is_store, think time). Small regions force constant collisions.
fn accesses() -> impl Strategy<Value = Vec<(u64, bool, u64)>> {
    prop::collection::vec((0u64..2048, prop::bool::ANY, 0u64..6), 1..400)
}

fn systems() -> Vec<Box<dyn MemorySystem>> {
    vec![
        Box::new(BaselineSystem::paper_default().unwrap()),
        Box::new(
            VictimSystem::paper_default(VictimConfig::new(VictimPolicy::Traditional)).unwrap(),
        ),
        Box::new(VictimSystem::paper_default(VictimConfig::new(VictimPolicy::FilterBoth)).unwrap()),
        Box::new(NextLineSystem::paper_default(PrefetchConfig::unfiltered()).unwrap()),
        Box::new(
            ExclusionSystem::paper_default(ExclusionConfig::new(ExclusionPolicy::Capacity))
                .unwrap(),
        ),
        Box::new(
            ExclusionSystem::paper_default(ExclusionConfig::new(ExclusionPolicy::Mat)).unwrap(),
        ),
        Box::new(
            PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::ConflictBit)).unwrap(),
        ),
        Box::new(AmbSystem::paper_default(AmbConfig::new(AmbPolicy::VicPreExc)).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Responses are causal (never before the request) and requests at
    /// non-decreasing times produce bounded latencies for every
    /// architecture, on arbitrary streams.
    #[test]
    fn every_architecture_is_causal_and_bounded(stream in accesses()) {
        for mut sys in systems() {
            let label = sys.label();
            let mut now = Cycle::ZERO;
            for &(line, store, think) in &stream {
                let addr = Addr::new(line * 64);
                let access = MemoryAccess {
                    addr,
                    kind: if store { AccessKind::Store } else { AccessKind::Load },
                    pc: Addr::new(0x400_000 + (line % 7) * 4),
                };
                let resp = sys.access(access, now);
                prop_assert!(resp.ready >= now, "{label}: time travel");
                // Worst case is a stall through a full MSHR file of
                // memory misses plus the fetch itself — comfortably
                // under 16 × 100 + slack.
                prop_assert!(
                    resp.ready - now < 4_000,
                    "{label}: latency {} looks unbounded",
                    resp.ready - now
                );
                now += think;
            }
        }
    }

    /// Determinism: replaying the identical stream through a fresh
    /// instance of each architecture produces identical responses.
    #[test]
    fn every_architecture_is_deterministic(stream in accesses()) {
        let run = |mut sys: Box<dyn MemorySystem>| -> Vec<u64> {
            let mut now = Cycle::ZERO;
            stream
                .iter()
                .map(|&(line, store, think)| {
                    let access = MemoryAccess {
                        addr: Addr::new(line * 64),
                        kind: if store { AccessKind::Store } else { AccessKind::Load },
                        pc: Addr::new(0x400_000),
                    };
                    let r = sys.access(access, now);
                    now += think;
                    r.ready.raw()
                })
                .collect()
        };
        let first: Vec<Vec<u64>> = systems().into_iter().map(run).collect();
        let second: Vec<Vec<u64>> = systems().into_iter().map(run).collect();
        prop_assert_eq!(first, second);
    }

    /// Repeatedly accessing one line quickly becomes cheap (it must be
    /// cached or buffered by every architecture) — no policy may
    /// permanently exile a hot line.
    #[test]
    fn hot_line_becomes_cheap_everywhere(line in 0u64..2048) {
        for mut sys in systems() {
            let label = sys.label();
            let access = MemoryAccess::load(Addr::new(line * 64), Addr::new(0x400_000));
            let mut now = Cycle::ZERO;
            // Warm up generously (some policies need a few rounds).
            for _ in 0..8 {
                let r = sys.access(access, now);
                now = r.ready + 10;
            }
            let r = sys.access(access, now);
            prop_assert!(
                r.ready - now <= 8,
                "{label}: hot line still costs {} cycles",
                r.ready - now
            );
        }
    }
}
