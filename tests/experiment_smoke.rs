//! End-to-end smoke tests: every experiment driver runs at a reduced
//! scale and must show the paper's qualitative orderings.

const EVENTS: usize = 25_000;

#[test]
fn fig1_accuracy_is_high_on_dm_configs() {
    let fig = experiments::fig1::run(EVENTS);
    // The direct-mapped configs are the paper's headline: both classes
    // well above 75% accuracy.
    for idx in [0usize, 2] {
        let avg = &fig.configs[idx].average;
        assert!(
            avg.conflict.value() > 0.75,
            "{} conflict {}",
            fig.configs[idx].name,
            avg.conflict.value()
        );
        assert!(
            avg.capacity.value() > 0.75,
            "{} capacity {}",
            fig.configs[idx].name,
            avg.capacity.value()
        );
    }
}

#[test]
fn fig2_capacity_accuracy_is_monotone_in_tag_bits() {
    let fig = experiments::fig2::run(EVENTS);
    let caps: Vec<f64> = fig
        .points
        .iter()
        .map(|p| p.report.capacity.value())
        .collect();
    for pair in caps.windows(2) {
        assert!(
            pair[1] >= pair[0] - 0.01,
            "capacity accuracy dipped: {caps:?}"
        );
    }
    // And the 1-bit point keeps conflict accuracy near the top.
    let conf1 = fig.points[0].report.conflict.value();
    let conf_full = fig.points.last().unwrap().report.conflict.value();
    assert!(conf1 >= conf_full - 0.02);
}

#[test]
fn fig3_filters_cut_traffic_and_win_on_average() {
    let fig = experiments::fig3::run(EVENTS);
    let trad = &fig.policies[0];
    let both = &fig.policies[3];
    assert!(both.stats.swap_rate() < trad.stats.swap_rate() * 0.3);
    assert!(both.stats.fill_rate() < trad.stats.fill_rate() * 0.6);
    assert!(
        both.mean_speedup >= trad.mean_speedup,
        "filter both {} vs traditional {}",
        both.mean_speedup,
        trad.mean_speedup
    );
}

#[test]
fn fig4_or_filter_has_best_accuracy() {
    let fig = experiments::fig4::run(EVENTS);
    let unfiltered = fig.strategies[0].stats.accuracy();
    let or_acc = fig.strategies[4].stats.accuracy();
    assert!(
        or_acc > unfiltered,
        "or-conflict {or_acc} vs unfiltered {unfiltered}"
    );
    // Coverage must not collapse.
    assert!(fig.strategies[4].stats.coverage() > fig.strategies[0].stats.coverage() - 0.1);
}

#[test]
fn fig5_capacity_filter_leads() {
    let fig = experiments::fig5::run(EVENTS);
    let get = |p| {
        fig.policies
            .iter()
            .find(|r| r.policy == p)
            .map(|r| (r.stats.total_hit_rate(), r.mean_speedup))
            .expect("policy present")
    };
    let (cap_hr, cap_spd) = get(exclusion::ExclusionPolicy::Capacity);
    let (mat_hr, mat_spd) = get(exclusion::ExclusionPolicy::Mat);
    let (conf_hr, _) = get(exclusion::ExclusionPolicy::Conflict);
    assert!(
        cap_hr >= mat_hr - 0.01,
        "capacity HR {cap_hr} vs MAT {mat_hr}"
    );
    assert!(
        cap_spd >= mat_spd - 0.01,
        "capacity spd {cap_spd} vs MAT {mat_spd}"
    );
    assert!(
        cap_hr > conf_hr,
        "capacity HR {cap_hr} vs conflict {conf_hr}"
    );
}

#[test]
fn sec54_pseudo_tracks_two_way() {
    let r = experiments::sec54::run(EVENTS);
    let (base, modified, two_way) = r.avg_miss;
    // Pseudo-associativity removes most DM conflicts: both variants
    // sit close to the true 2-way miss rate (paper: within ~1%).
    assert!(
        (base - two_way).abs() < 0.03,
        "base {base} vs 2-way {two_way}"
    );
    assert!(
        (modified - two_way).abs() < 0.03,
        "modified {modified} vs 2-way {two_way}"
    );
    // And the modified policy does not hurt.
    assert!(modified < base + 0.005);
}

#[test]
fn fig6_combined_policies_beat_singles() {
    let fig = experiments::fig6::run(EVENTS);
    let spd = |p, e| fig.result(p, e).unwrap().mean_speedup;
    use amb::AmbPolicy::*;
    let best_single = spd(Vict, 8).max(spd(Pref, 8)).max(spd(Excl, 8));
    let best_combo = spd(VictPref, 8)
        .max(spd(PrefExcl, 8))
        .max(spd(VicPreExc, 8));
    assert!(
        best_combo > best_single,
        "combined {best_combo} must beat best single {best_single}"
    );
    // Figure 7 components: the combined policy covers several classes.
    let combo = fig.result(VicPreExc, 8).unwrap();
    assert!(combo.stats.prefetch_hits > 0);
    assert!(combo.stats.exclusion_hits > 0);
    assert!(combo.stats.total_hit_rate() > fig.baseline_hit_rate);
}

#[test]
fn displays_render_without_panicking() {
    // Rendering exercises all the formatting paths (the CLI's output).
    let _ = experiments::fig1::run(2_000).to_string();
    let _ = experiments::fig2::run(2_000).to_string();
    let _ = experiments::fig3::run(2_000).to_string();
    let _ = experiments::fig4::run(2_000).to_string();
    let _ = experiments::fig5::run(2_000).to_string();
    let _ = experiments::sec54::run(2_000).to_string();
    let _ = experiments::fig6::run(2_000).to_string();
}
