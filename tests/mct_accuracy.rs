//! Cross-crate validation of the paper's headline claim (Figure 1):
//! the MCT correctly classifies the large majority of misses against
//! the classic three-C oracle, across cache configurations.

use cache_model::CacheGeometry;
use mct::accuracy::{AccuracyEvaluator, AccuracyReport};
use mct::TagBits;
use workloads::full_suite;

const EVENTS: usize = 150_000;

fn suite_accuracy(size_kb: u64, assoc: u32, tag_bits: TagBits) -> AccuracyReport {
    let geom = CacheGeometry::new(size_kb * 1024, assoc, 64).unwrap();
    let mut total = AccuracyReport::default();
    for w in full_suite() {
        let mut eval = AccuracyEvaluator::new(geom, tag_bits);
        let mut src = w.source(1);
        for _ in 0..EVENTS {
            eval.observe(src.next_event().access.addr.line(64));
        }
        total.merge(eval.report());
    }
    total
}

#[test]
fn figure1_shape_16kb_dm() {
    let r = suite_accuracy(16, 1, TagBits::Full);
    println!(
        "16KB DM: conflict {:.1}%, capacity {:.1}%, overall {:.1}%",
        r.conflict.percent(),
        r.capacity.percent(),
        r.overall() * 100.0
    );
    // Paper: 88% conflict / 86% capacity on 16KB DM. Require the
    // figure's qualitative claim: both well above 75%, overall ≥ 80%.
    assert!(
        r.conflict.value() > 0.75,
        "conflict accuracy {}",
        r.conflict.value()
    );
    assert!(
        r.capacity.value() > 0.75,
        "capacity accuracy {}",
        r.capacity.value()
    );
    assert!(r.overall() > 0.80, "overall {}", r.overall());
    // And there must be real numbers behind it.
    assert!(r.conflict.denominator() > 10_000);
    assert!(r.capacity.denominator() > 10_000);
}

#[test]
fn figure1_shape_across_configurations() {
    for (kb, assoc) in [(16, 1), (16, 2), (64, 1), (64, 2)] {
        let r = suite_accuracy(kb, assoc, TagBits::Full);
        println!(
            "{kb}KB {assoc}-way: conflict {:.1}%, capacity {:.1}% ({} conflict / {} capacity misses)",
            r.conflict.percent(),
            r.capacity.percent(),
            r.conflict.denominator(),
            r.capacity.denominator()
        );
        assert!(
            r.overall() > 0.75,
            "{kb}KB {assoc}-way overall accuracy {}",
            r.overall()
        );
    }
}

#[test]
fn figure2_shape_partial_tags() {
    // Saving only the low bits of the tag must (a) converge to the
    // full-tag accuracy by ~8-12 bits and (b) err toward conflict at
    // 1 bit (conflict accuracy high, capacity accuracy low).
    let full = suite_accuracy(16, 1, TagBits::Full);
    let twelve = suite_accuracy(16, 1, TagBits::Low(12));
    let eight = suite_accuracy(16, 1, TagBits::Low(8));
    let one = suite_accuracy(16, 1, TagBits::Low(1));

    println!(
        "full: c {:.1}/k {:.1} | 12-bit: c {:.1}/k {:.1} | 8-bit: c {:.1}/k {:.1} | 1-bit: c {:.1}/k {:.1}",
        full.conflict.percent(),
        full.capacity.percent(),
        twelve.conflict.percent(),
        twelve.capacity.percent(),
        eight.conflict.percent(),
        eight.capacity.percent(),
        one.conflict.percent(),
        one.capacity.percent()
    );

    // Paper: "10-12 bits should be sufficient for most applications" —
    // 12 bits ≈ full (within 3 points on both classes).
    assert!((twelve.conflict.value() - full.conflict.value()).abs() < 0.03);
    assert!((twelve.capacity.value() - full.capacity.value()).abs() < 0.03);
    // 8 bits loses only a little more.
    assert!((eight.conflict.value() - full.conflict.value()).abs() < 0.08);
    assert!((eight.capacity.value() - full.capacity.value()).abs() < 0.08);
    // 1 bit: conflict accuracy at least as high as full (aliasing can
    // only add conflict labels), capacity accuracy clearly lower.
    assert!(one.conflict.value() >= full.conflict.value() - 0.01);
    assert!(one.capacity.value() < full.capacity.value() - 0.05);
    // Paper: even 1 bit excludes "nearly half of capacity misses";
    // i.e. capacity accuracy stays well above zero.
    assert!(
        one.capacity.value() > 0.3,
        "1-bit capacity accuracy {}",
        one.capacity.value()
    );
}
