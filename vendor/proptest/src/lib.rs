//! Offline mini [proptest](https://proptest-rs.github.io/proptest/):
//! a self-contained property-testing harness implementing the subset
//! of the proptest API this workspace's tests use, so the suite runs
//! in environments with no crates.io access.
//!
//! Supported surface:
//!
//! * [`Strategy`] over integer ranges (`0u64..64`), tuples of
//!   strategies, [`collection::vec`], [`bool::ANY`], and
//!   [`Strategy::prop_map`];
//! * the [`proptest!`] macro, including a leading
//!   `#![proptest_config(..)]` attribute;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//!   (plain assertions — a failure panics immediately).
//!
//! Differences from real proptest: inputs are drawn from a fixed
//! per-test seed (every run replays the identical cases, which suits
//! this repository's determinism-first philosophy), and there is no
//! shrinking — a failing case prints its case index so it can be
//! reproduced directly.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Deterministic generator state (SplitMix64), seeded per test from
/// the test's name so cases are stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates the RNG for a named test. The name is hashed (FNV-1a)
    /// so every test draws an independent, reproducible stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A source of arbitrary values of one type.
///
/// Mirrors proptest's `Strategy`, reduced to direct sampling: no
/// value trees, no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// Strategies over collections.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A `Vec` strategy: `len` elements drawn from `element`, with the
    /// length itself drawn from the given range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases drawn per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that draws `config.cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _case_guard = $crate::CaseGuard::new(stringify!($name), case);
                    let ($($arg,)*) = ($($crate::Strategy::sample(&($strategy), &mut rng),)*);
                    $body
                }
            }
        )*
    };
}

/// Prints the failing case index when a property panics, so the exact
/// input can be replayed (cases are drawn from a fixed per-test seed).
#[doc(hidden)]
#[derive(Debug)]
pub struct CaseGuard {
    name: &'static str,
    case: u32,
}

impl CaseGuard {
    #[doc(hidden)]
    #[must_use]
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard { name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} (deterministic seed; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges_stay_in_bounds");
        let s = 5u64..17;
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_honour_range() {
        let mut rng = crate::TestRng::for_test("vec_lengths_honour_range");
        let s = prop::collection::vec(0u32..4, 2..9);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let draw = || {
            let mut rng = crate::TestRng::for_test("fixed-name");
            (0u64..1_000_000).sample(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_draws_tuples_and_maps((a, b) in (0u8..10, 0u8..10), v in prop::collection::vec((0u64..3).prop_map(|x| x * 2), 1..5)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.iter().all(|&x| x % 2 == 0));
            prop_assert_ne!(v.len(), 0);
        }
    }
}
