//! Offline mini [criterion](https://bheisler.github.io/criterion.rs):
//! a self-contained benchmark harness implementing the subset of the
//! criterion API this workspace's benches use, so `cargo bench` works
//! in environments with no crates.io access.
//!
//! Each benchmark runs a short warmup followed by `sample_size` timed
//! iterations and prints the median, min and max wall time — plus
//! elements/second when the group declares [`Throughput::Elements`].
//! There are no plots, no outlier analysis and no saved baselines;
//! the numbers are honest wall-clock medians, which is what the
//! repository's perf-tracking workflow (`BENCH_*.json`, EXPERIMENTS.md
//! "Runtime & throughput") consumes.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: holds run-wide settings and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, None, f);
        self
    }

    /// Opens a named group; benchmarks in it are labelled
    /// `group/name` and may declare a throughput.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// How many units one iteration of a benchmark processes, for
/// reporting rates alongside times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (events, lines, accesses) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a label and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the
/// routine under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine`: one warmup call, then `sample_size` recorded
    /// calls.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        target: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<44} (no samples recorded)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", si(n as f64 / median.as_secs_f64())),
        Throughput::Bytes(n) => format!("  thrpt: {}B/s", si(n as f64 / median.as_secs_f64())),
    });
    println!(
        "{label:<44} time: [{} {} {}]{}",
        human(min),
        human(median),
        human(max),
        rate.unwrap_or_default()
    );
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Bundles benchmark functions into a runnable group function, with an
/// optional shared [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` for a `harness = false` bench target. When cargo runs
/// bench targets under `cargo test` it passes `--test`; benchmarks are
/// skipped in that mode so the test suite stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    #[test]
    fn human_units_scale() {
        assert!(human(Duration::from_nanos(50)).contains("ns"));
        assert!(human(Duration::from_micros(50)).contains("µs"));
        assert!(human(Duration::from_millis(50)).contains("ms"));
        assert!(human(Duration::from_secs(5)).contains(" s"));
    }
}
