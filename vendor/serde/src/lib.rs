//! Offline placeholder for [serde](https://serde.rs).
//!
//! The workspace builds in environments with no crates.io access, so
//! this stub exists only to let the *optional* `serde` dependency
//! declared by every crate resolve. No workspace crate enables its
//! `serde` cargo feature by default, so the `cfg_attr` derive
//! attributes that reference `serde::Serialize` / `serde::Deserialize`
//! are never compiled against this stub.
//!
//! To build with real serialization support, replace the `serde` entry
//! in `[workspace.dependencies]` with the crates.io version and enable
//! the `serde` feature on the crates you need (see vendor/README.md).

/// Marker trait standing in for `serde::Serialize`.
///
/// Never implemented by the stub's users: the workspace's `serde`
/// features are off by default, and turning them on requires the real
/// crate (the stub has no derive macros).
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
